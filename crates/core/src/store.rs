//! Struct-of-arrays storage for hot per-core control-loop state.
//!
//! The control loop touches every core each epoch (power accounting,
//! criticality ranking, mapping, test scheduling, thermal relaxation).
//! With an array-of-structs `Vec<CoreSlot>` each phase drags whole slots
//! through the cache to read one field; [`CoreStore`] splits the slot
//! into parallel flat arrays so each phase streams only the arrays it
//! needs, and maintains the derived views those phases used to recompute
//! by full scans:
//!
//! - `mappable_count` — cores with no owner and not quarantined; the
//!   mapper's admission gate reads this in O(1) instead of filtering all
//!   cores per pending application.
//! - `testing_count` — cores with a live test session; epoch traces and
//!   run finalisation read it in O(1).
//! - `testable` bitset — cores the test scheduler may rank (no session,
//!   not `Busy`/`Testing`); the scheduler walks set bits in ascending
//!   core order instead of scanning every slot.
//!
//! A generation/dirty-set scheme stamps which cores changed policy-
//! relevant state (mode, owner, session, health) since the last epoch
//! boundary: every mutator funnels through [`CoreStore::mark_dirty`],
//! and [`CoreStore::advance_generation`] opens a fresh epoch without
//! touching the per-core stamps (the stamp comparison makes old marks
//! stale implicitly). Consumers that cache per-core derived data can
//! refresh only `dirty_cores()` instead of rescanning the mesh.
//!
//! Every view is maintained incrementally and must stay equal to a from-
//! scratch rebuild; [`CoreStore::rebuild_views`] computes the latter and
//! the property tests in `tests/store_consistency.rs` drive randomized
//! mutation sequences against it.

use crate::exec::CoreMode;
use manytest_power::Reservation;
use manytest_sbst::TestSession;
use manytest_workload::{AppId, TaskId};

/// Bits per word of the `testable` bitset.
const WORD_BITS: usize = u64::BITS as usize;

/// Hot per-core state as parallel flat arrays, plus incrementally
/// maintained derived views and a generation/dirty-set.
///
/// Indexing any accessor with `core >= len()` panics, as slicing a
/// `Vec<CoreSlot>` out of range always did; core ids come from the mesh
/// and are validated at construction time.
///
/// # Examples
///
/// ```
/// use manytest_core::exec::CoreMode;
/// use manytest_core::store::CoreStore;
///
/// let mut store = CoreStore::new(4);
/// assert_eq!(store.mappable_count(), 4);
/// assert!(store.is_test_candidate(0));
/// store.set_quarantined(1);
/// assert_eq!(store.mappable_count(), 3);
/// ```
#[derive(Debug)]
pub struct CoreStore {
    // --- hot parallel arrays (one entry per core, dense id order) ---
    mode: Vec<CoreMode>,
    accrued_since: Vec<f64>,
    owner: Vec<Option<(AppId, TaskId)>>,
    session: Vec<Option<TestSession>>,
    session_reservation: Vec<Option<Reservation>>,
    session_gen: Vec<u64>,
    /// Health mirror: `false` once quarantined. The `HealthBoard` stays
    /// the source of truth for suspect/retest detail; this bit exists so
    /// the mappable count updates without consulting another crate.
    healthy: Vec<bool>,
    // --- cold per-core state (touched only at test completion) ---
    test_times: Vec<Vec<f64>>,
    // --- maintained derived views ---
    mappable: usize,
    testing: usize,
    testable: Vec<u64>,
    // --- generation / dirty set ---
    generation: u64,
    dirty_stamp: Vec<u64>,
    dirty: Vec<u32>,
    dirty_marks: u64,
}

/// Snapshot of the derived views, for consistency checking: the
/// maintained copy ([`CoreStore::current_views`]) must always equal the
/// from-scratch rebuild ([`CoreStore::rebuild_views`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreViews {
    /// Cores with no owner and not quarantined.
    pub mappable: usize,
    /// Cores with a live test session.
    pub testing: usize,
    /// Bitset of test-candidate cores (no session, not busy/testing).
    pub testable: Vec<u64>,
}

impl CoreStore {
    /// A store of `n` fresh cores: power-gated, unowned, healthy, and
    /// test candidates.
    pub fn new(n: usize) -> Self {
        let words = n.div_ceil(WORD_BITS);
        let mut testable = vec![u64::MAX; words];
        Self::clear_tail_bits(&mut testable, n);
        CoreStore {
            mode: vec![CoreMode::Off; n],
            accrued_since: vec![0.0; n],
            owner: vec![None; n],
            session: vec![None; n],
            session_reservation: vec![None; n],
            session_gen: vec![0; n],
            healthy: vec![true; n],
            test_times: vec![Vec::new(); n],
            mappable: n,
            testing: 0,
            testable,
            generation: 1,
            dirty_stamp: vec![0; n],
            dirty: Vec::new(),
            dirty_marks: 0,
        }
    }

    /// Number of cores.
    pub fn len(&self) -> usize {
        self.mode.len()
    }

    /// True for an empty platform (degenerate, but keeps clippy honest).
    pub fn is_empty(&self) -> bool {
        self.mode.is_empty()
    }

    // --- mode ---

    /// Current mode of `core`.
    pub fn mode(&self, core: usize) -> CoreMode {
        self.mode[core]
    }

    /// Sets the mode of `core`, updating the testable view and dirty set.
    pub fn set_mode(&mut self, core: usize, mode: CoreMode) {
        self.mode[core] = mode;
        self.refresh_testable(core);
        self.mark_dirty(core);
    }

    // --- accounting timestamp (not policy state: no dirty mark) ---

    /// Start of the unaccounted span on `core`, seconds.
    pub fn accrued_since(&self, core: usize) -> f64 {
        self.accrued_since[core]
    }

    /// Moves the accounting watermark of `core` to `now`.
    pub fn set_accrued_since(&mut self, core: usize, now: f64) {
        self.accrued_since[core] = now;
    }

    // --- ownership ---

    /// Owning application and task of `core`, if allocated.
    pub fn owner(&self, core: usize) -> Option<(AppId, TaskId)> {
        self.owner[core]
    }

    /// Sets or clears the owner of `core`, maintaining the mappable
    /// count.
    pub fn set_owner(&mut self, core: usize, owner: Option<(AppId, TaskId)>) {
        let was = self.owner[core].is_none() && self.healthy[core];
        self.owner[core] = owner;
        let is = self.owner[core].is_none() && self.healthy[core];
        match (was, is) {
            (true, false) => self.mappable -= 1,
            (false, true) => self.mappable += 1,
            _ => {}
        }
        self.mark_dirty(core);
    }

    // --- health mirror ---

    /// Whether `core` is still healthy (not quarantined).
    pub fn is_healthy(&self, core: usize) -> bool {
        self.healthy[core]
    }

    /// Marks `core` quarantined, removing it from the mappable set.
    pub fn set_quarantined(&mut self, core: usize) {
        self.set_healthy(core, false);
    }

    /// Sets the health bit of `core`, maintaining the mappable count.
    pub fn set_healthy(&mut self, core: usize, healthy: bool) {
        let was = self.owner[core].is_none() && self.healthy[core];
        self.healthy[core] = healthy;
        let is = self.owner[core].is_none() && self.healthy[core];
        match (was, is) {
            (true, false) => self.mappable -= 1,
            (false, true) => self.mappable += 1,
            _ => {}
        }
        self.mark_dirty(core);
    }

    // --- sessions ---

    /// Whether `core` has a live test session.
    pub fn has_session(&self, core: usize) -> bool {
        self.session[core].is_some()
    }

    /// Copy of the live session on `core`, if any.
    pub fn session(&self, core: usize) -> Option<TestSession> {
        self.session[core]
    }

    /// Session generation of `core` (stale-event filtering).
    pub fn session_gen(&self, core: usize) -> u64 {
        self.session_gen[core]
    }

    /// Installs a session plus its backing reservation on `core` and
    /// returns the generation that identifies it. The caller must have
    /// checked there is no live session.
    pub fn begin_session(
        &mut self,
        core: usize,
        session: TestSession,
        reservation: Reservation,
    ) -> u64 {
        debug_assert!(self.session[core].is_none(), "core already under test");
        self.session[core] = Some(session);
        self.session_reservation[core] = Some(reservation);
        self.testing += 1;
        self.refresh_testable(core);
        self.mark_dirty(core);
        self.session_gen[core]
    }

    /// Removes the session (complete or aborted) from `core`, bumping
    /// the generation so in-flight finish events for it become stale.
    /// Returns the session and its reservation; both are `None` when no
    /// session was live (the generation is then left untouched, exactly
    /// like the pre-SoA early-return path).
    pub fn end_session(&mut self, core: usize) -> (Option<TestSession>, Option<Reservation>) {
        let session = self.session[core].take();
        let reservation = self.session_reservation[core].take();
        if session.is_some() {
            self.session_gen[core] += 1;
            self.testing -= 1;
            self.refresh_testable(core);
            self.mark_dirty(core);
        }
        (session, reservation)
    }

    // --- test-interval statistics (cold) ---

    /// Completion time of the most recent test on `core`, if any.
    pub fn last_test_time(&self, core: usize) -> Option<f64> {
        self.test_times[core].last().copied()
    }

    /// Records a test completion on `core` at `now` seconds.
    pub fn push_test_time(&mut self, core: usize, now: f64) {
        self.test_times[core].push(now);
    }

    // --- derived predicates (same definitions CoreSlot carried) ---

    /// True if the core may be offered to the test scheduler: it is not
    /// executing a task and not already under test.
    pub fn is_test_candidate(&self, core: usize) -> bool {
        self.session[core].is_none()
            && !matches!(self.mode[core], CoreMode::Busy(_) | CoreMode::Testing(..))
    }

    /// True if the runtime mapper may allocate this core (quarantine is
    /// layered on separately, as it always was).
    pub fn is_free_for_mapping(&self, core: usize) -> bool {
        self.owner[core].is_none()
    }

    // --- maintained views ---

    /// Cores with no owner and not quarantined, O(1).
    pub fn mappable_count(&self) -> usize {
        self.mappable
    }

    /// Cores with a live test session, O(1).
    pub fn testing_count(&self) -> usize {
        self.testing
    }

    /// The test-candidate bitset, one bit per core, LSB-first within
    /// each word. Walking words and `trailing_zeros` visits candidates
    /// in ascending core order — the same order the old full scan
    /// produced.
    pub fn testable_words(&self) -> &[u64] {
        &self.testable
    }

    /// Calls `f(core)` for every test candidate, ascending core order.
    pub fn for_each_testable(&self, mut f: impl FnMut(usize)) {
        for (w, &word) in self.testable.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                f(w * WORD_BITS + b);
                bits &= bits - 1;
            }
        }
    }

    // --- generation / dirty set ---

    /// The current epoch generation (starts at 1).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Cores whose policy state changed since the last
    /// [`CoreStore::advance_generation`], in first-touch order, each at
    /// most once.
    pub fn dirty_cores(&self) -> &[u32] {
        &self.dirty
    }

    /// Total dirty-set insertions over the run (a deterministic decision
    /// counter: re-marking an already-dirty core does not count).
    pub fn dirty_marks(&self) -> u64 {
        self.dirty_marks
    }

    /// Closes the epoch: clears the dirty list and bumps the generation
    /// so stale stamps age out implicitly (no per-core work).
    pub fn advance_generation(&mut self) {
        debug_assert!(self.views_consistent(), "maintained views drifted from a rebuild");
        self.dirty.clear();
        self.generation += 1;
    }

    fn mark_dirty(&mut self, core: usize) {
        if self.dirty_stamp[core] != self.generation {
            self.dirty_stamp[core] = self.generation;
            self.dirty.push(core as u32);
            self.dirty_marks += 1;
        }
    }

    fn refresh_testable(&mut self, core: usize) {
        let word = core / WORD_BITS;
        let bit = 1u64 << (core % WORD_BITS);
        if self.is_test_candidate(core) {
            self.testable[word] |= bit;
        } else {
            self.testable[word] &= !bit;
        }
    }

    fn clear_tail_bits(words: &mut [u64], n: usize) {
        let tail = n % WORD_BITS;
        if tail != 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    // --- consistency checking ---

    /// The maintained derived views, cloned.
    pub fn current_views(&self) -> StoreViews {
        StoreViews {
            mappable: self.mappable,
            testing: self.testing,
            testable: self.testable.clone(),
        }
    }

    /// The derived views recomputed from scratch off the flat arrays.
    // lint:effect(alloc, reason = "consistency-audit path: the from-scratch recompute exists to cross-check the incremental views, not to serve the steady state")
    pub fn rebuild_views(&self) -> StoreViews {
        let n = self.len();
        let mut testable = vec![0u64; n.div_ceil(WORD_BITS)];
        let mut mappable = 0;
        let mut testing = 0;
        for core in 0..n {
            if self.owner[core].is_none() && self.healthy[core] {
                mappable += 1;
            }
            if self.session[core].is_some() {
                testing += 1;
            }
            if self.is_test_candidate(core) {
                testable[core / WORD_BITS] |= 1u64 << (core % WORD_BITS);
            }
        }
        StoreViews {
            mappable,
            testing,
            testable,
        }
    }

    /// True while the maintained views match a from-scratch rebuild.
    pub fn views_consistent(&self) -> bool {
        self.rebuild_views() == self.current_views()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manytest_power::{OperatingPoint, PowerBudget, TechNode, VfLadder, VfLevel};
    use manytest_sbst::RoutineId;

    fn ladder_op() -> OperatingPoint {
        VfLadder::for_node(TechNode::N16, 5).max()
    }

    fn session_at(core: usize) -> TestSession {
        TestSession::new(core, RoutineId(0), VfLevel(0), 100, 1.0e9, 0.0)
    }

    fn reservation() -> Reservation {
        PowerBudget::new(10.0).reserve(1.0).unwrap()
    }

    #[test]
    fn fresh_cores_are_dark_mappable_test_candidates() {
        let store = CoreStore::new(5);
        assert_eq!(store.len(), 5);
        assert_eq!(store.mappable_count(), 5);
        assert_eq!(store.testing_count(), 0);
        for core in 0..5 {
            assert_eq!(store.mode(core), CoreMode::Off);
            assert!(store.is_test_candidate(core));
            assert!(store.is_free_for_mapping(core));
        }
        let mut seen = Vec::new();
        store.for_each_testable(|c| seen.push(c));
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn busy_core_is_neither_testable_nor_free() {
        let mut store = CoreStore::new(2);
        store.set_owner(0, Some((AppId(1), TaskId(0))));
        store.set_mode(0, CoreMode::Busy(ladder_op()));
        assert!(!store.is_test_candidate(0));
        assert!(!store.is_free_for_mapping(0));
        assert_eq!(store.mappable_count(), 1);
        let mut seen = Vec::new();
        store.for_each_testable(|c| seen.push(c));
        assert_eq!(seen, vec![1]);
    }

    #[test]
    fn allocated_idle_core_is_testable_but_not_free() {
        let mut store = CoreStore::new(2);
        store.set_owner(1, Some((AppId(1), TaskId(0))));
        store.set_mode(1, CoreMode::Idle(ladder_op()));
        assert!(store.is_test_candidate(1));
        assert!(!store.is_free_for_mapping(1));
        assert_eq!(store.mappable_count(), 1);
    }

    #[test]
    fn session_lifecycle_maintains_views_and_generation() {
        let mut store = CoreStore::new(3);
        let gen = store.begin_session(1, session_at(1), reservation());
        store.set_mode(1, CoreMode::Testing(ladder_op(), 0.8));
        assert_eq!(gen, 0);
        assert_eq!(store.testing_count(), 1);
        assert!(!store.is_test_candidate(1));
        assert!(
            store.is_free_for_mapping(1),
            "dark core under test stays mappable"
        );
        let (session, res) = store.end_session(1);
        assert!(session.is_some() && res.is_some());
        assert_eq!(store.session_gen(1), 1, "ending a session bumps the generation");
        assert_eq!(store.testing_count(), 0);
        // A second end is a no-op and must not bump the generation.
        let (none_s, none_r) = store.end_session(1);
        assert!(none_s.is_none() && none_r.is_none());
        assert_eq!(store.session_gen(1), 1);
    }

    #[test]
    fn quarantine_removes_core_from_mappable_once() {
        let mut store = CoreStore::new(4);
        store.set_quarantined(2);
        assert_eq!(store.mappable_count(), 3);
        assert!(!store.is_healthy(2));
        // Quarantining again changes nothing.
        store.set_quarantined(2);
        assert_eq!(store.mappable_count(), 3);
        // An owned core leaving quarantine only becomes mappable once
        // the owner also releases it.
        store.set_owner(2, Some((AppId(7), TaskId(0))));
        store.set_healthy(2, true);
        assert_eq!(store.mappable_count(), 3);
        store.set_owner(2, None);
        assert_eq!(store.mappable_count(), 4);
    }

    #[test]
    fn dirty_set_dedups_within_a_generation() {
        let mut store = CoreStore::new(4);
        assert_eq!(store.generation(), 1);
        store.set_mode(0, CoreMode::Idle(ladder_op()));
        store.set_mode(0, CoreMode::Busy(ladder_op()));
        store.set_owner(3, Some((AppId(1), TaskId(0))));
        assert_eq!(store.dirty_cores(), &[0, 3]);
        assert_eq!(store.dirty_marks(), 2);
        store.advance_generation();
        assert_eq!(store.generation(), 2);
        assert!(store.dirty_cores().is_empty());
        // The same core dirties again in the new generation.
        store.set_mode(0, CoreMode::Off);
        assert_eq!(store.dirty_cores(), &[0]);
        assert_eq!(store.dirty_marks(), 3);
    }

    #[test]
    fn testable_bitset_tail_bits_stay_clear() {
        // A non-multiple-of-64 core count must not surface ghost cores.
        let store = CoreStore::new(70);
        let mut seen = Vec::new();
        store.for_each_testable(|c| seen.push(c));
        assert_eq!(seen.len(), 70);
        assert_eq!(seen.last(), Some(&69));
        assert!(store.views_consistent());
    }

    #[test]
    fn maintained_views_match_rebuild_after_mixed_mutations() {
        let mut store = CoreStore::new(9);
        store.set_owner(0, Some((AppId(1), TaskId(0))));
        store.set_mode(0, CoreMode::Busy(ladder_op()));
        store.begin_session(4, session_at(4), reservation());
        store.set_mode(4, CoreMode::Testing(ladder_op(), 0.5));
        store.set_quarantined(7);
        store.end_session(4);
        store.set_mode(4, CoreMode::Off);
        assert!(store.views_consistent());
        assert_eq!(store.current_views(), store.rebuild_views());
    }

    #[test]
    fn test_times_record_last_completion() {
        let mut store = CoreStore::new(2);
        assert_eq!(store.last_test_time(1), None);
        store.push_test_time(1, 0.25);
        store.push_test_time(1, 0.75);
        assert_eq!(store.last_test_time(1), Some(0.75));
        assert_eq!(store.last_test_time(0), None);
    }
}
