//! Deterministic discrete-event simulation kernel for the `manytest` workspace.
//!
//! The kernel provides the pieces every other crate builds on:
//!
//! * [`time`] — strongly typed simulation time ([`SimTime`], [`Duration`]) and
//!   control epochs ([`Epoch`]). The manycore simulator advances in fixed-size
//!   control epochs (the granularity at which the power manager, the mapper
//!   and the test scheduler run), while task/test completions are resolved at
//!   sub-epoch resolution through the event queue.
//! * [`engine`] — a minimal, allocation-friendly event calendar
//!   ([`EventQueue`]) with stable FIFO ordering among simultaneous events, so
//!   that runs are bit-for-bit reproducible.
//! * [`rng`] — a splittable deterministic RNG ([`SimRng`]) so that every
//!   subsystem (workload generator, fault injector, …) draws from an
//!   independent, seed-derived stream.
//! * [`stats`] — small online statistics helpers (mean/min/max/stddev,
//!   histograms, time-weighted averages) used by the metrics layer.
//! * [`trace`] — a lightweight trace sink for time-series output (power
//!   traces, utilisation traces) consumed by the bench harness.
//! * [`obs`] — structured decision telemetry: the [`Observer`] hook the
//!   control loop emits typed [`SimEvent`]s through, plus concrete sinks
//!   (bounded [`EventLog`], streaming JSONL writer, [`CounterRegistry`]).
//!   Every emission carries a deterministic [`EventId`] and an optional
//!   [`CauseLink`] back to the decision that triggered it.
//! * [`provenance`] — causal-chain reconstruction over the record
//!   stream: walk any event back to its root or forward to everything
//!   it caused, with per-chain aggregates ([`ProvenanceGraph`]).
//!
//! # Examples
//!
//! ```
//! use manytest_sim::prelude::*;
//!
//! let mut queue = EventQueue::new();
//! queue.schedule(SimTime::from_us(5), "five");
//! queue.schedule(SimTime::from_us(1), "one");
//! assert_eq!(queue.pop().map(|e| e.payload), Some("one"));
//! assert_eq!(queue.pop().map(|e| e.payload), Some("five"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod obs;
pub mod provenance;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;
pub mod wire;

pub use engine::{Event, EventQueue};
pub use obs::{
    emit_record, jsonl_kind_counts, write_json_str, AbortReason, CauseKind, CauseLink, CoreState,
    CounterRegistry, EventId, EventLog, EventRecord, HealthCode, JsonlWriter, NullObserver,
    NullPhaseObserver, Observer, Phase, PhaseObserver, PhaseProfile, ProgressCounters,
    ProgressSnapshot, SimEvent, StateRecorder, StateSnapshot, StateTimeline,
};
pub use provenance::{ChainSummary, ProvenanceGraph};
pub use rng::{enter_job_scope, JobScopeGuard, SimRng};
pub use stats::{Histogram, OnlineStats, TimeWeighted};
pub use time::{Duration, Epoch, SimTime};
pub use trace::{Trace, TraceSeries};
pub use wire::{decode_from_str, encode_to_string, Wire, WireError, WireReader, WireWriter};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::engine::{Event, EventQueue};
    pub use crate::obs::{
        emit_record, jsonl_kind_counts, write_json_str, AbortReason, CauseKind, CauseLink,
        CoreState, CounterRegistry, EventId, EventLog, EventRecord, HealthCode, JsonlWriter,
        NullObserver, NullPhaseObserver, Observer, Phase, PhaseObserver, PhaseProfile,
        ProgressCounters, ProgressSnapshot, SimEvent, StateRecorder, StateSnapshot, StateTimeline,
    };
    pub use crate::provenance::{ChainSummary, ProvenanceGraph};
    pub use crate::rng::{enter_job_scope, JobScopeGuard, SimRng};
    pub use crate::stats::{Histogram, OnlineStats, TimeWeighted};
    pub use crate::time::{Duration, Epoch, SimTime};
    pub use crate::trace::{Trace, TraceSeries};
    pub use crate::wire::{
        decode_from_str, encode_to_string, Wire, WireError, WireReader, WireWriter,
    };
}
