pub fn tally(ev: &SimEvent) -> u32 {
    match ev {
        SimEvent::TestCompleted { .. } => 1,
        SimEvent::TestAborted { .. } => 2,
        _ => 0,
    }
}
