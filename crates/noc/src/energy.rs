//! Analytical NoC latency and energy model.
//!
//! The original evaluation ran a flit-accurate RTL NoC. We substitute the
//! standard analytical "bit-energy" model (Ye/Benini/De Micheli; the same
//! family of constants Orion produces): transporting one bit across one hop
//! costs `E_link + E_router`, and a `b`-bit message over `h` hops costs
//! `b · (h · E_link + (h + 1) · E_router)`. This keeps the *relative* cost of
//! mapping decisions (the only thing the policies under study consume) while
//! remaining fast enough for long manycore runs.

use crate::coord::Coord;
use serde::{Deserialize, Serialize};

/// Per-hop energy and latency constants for links and routers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkEnergyModel {
    /// Energy to move one bit across one inter-router link, in joules.
    pub link_energy_per_bit: f64,
    /// Energy to move one bit through one router (buffering + crossbar +
    /// arbitration), in joules.
    pub router_energy_per_bit: f64,
    /// Latency of one hop (link + router pipeline), in seconds.
    pub hop_latency: f64,
    /// Serialisation bandwidth of a link, in bits per second.
    pub link_bandwidth: f64,
}

impl LinkEnergyModel {
    /// Constants representative of a 16 nm mesh NoC running near 1 GHz
    /// (≈ 0.1 pJ/bit/link, ≈ 0.2 pJ/bit/router, 3-cycle hops, 128-bit links).
    pub fn nominal_16nm() -> Self {
        LinkEnergyModel {
            link_energy_per_bit: 0.1e-12,
            router_energy_per_bit: 0.2e-12,
            hop_latency: 3.0e-9,
            link_bandwidth: 128.0e9,
        }
    }

    /// Scales the model's energies by `factor` (used by the technology
    /// scaling layer: older nodes burn more energy per bit).
    #[must_use]
    pub fn scaled_energy(mut self, factor: f64) -> Self {
        self.link_energy_per_bit *= factor;
        self.router_energy_per_bit *= factor;
        self
    }
}

impl Default for LinkEnergyModel {
    fn default() -> Self {
        Self::nominal_16nm()
    }
}

/// Computed transport cost of one message.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocEnergy {
    /// Total transport energy, joules.
    pub energy: f64,
    /// End-to-end zero-load latency, seconds.
    pub latency: f64,
    /// Hop count of the (minimal) route.
    pub hops: u32,
}

impl LinkEnergyModel {
    /// Cost of sending `bits` bits from `src` to `dst` over the minimal XY
    /// route (hop count = Manhattan distance).
    ///
    /// A message to self (`src == dst`) traverses only the local router.
    ///
    /// # Examples
    ///
    /// ```
    /// use manytest_noc::energy::LinkEnergyModel;
    /// use manytest_noc::coord::Coord;
    ///
    /// let m = LinkEnergyModel::nominal_16nm();
    /// let near = m.message_cost(Coord::new(0, 0), Coord::new(1, 0), 1024.0);
    /// let far = m.message_cost(Coord::new(0, 0), Coord::new(5, 5), 1024.0);
    /// assert!(far.energy > near.energy);
    /// assert!(far.latency > near.latency);
    /// ```
    pub fn message_cost(&self, src: Coord, dst: Coord, bits: f64) -> NocEnergy {
        let hops = src.manhattan(dst);
        let routers = hops as f64 + 1.0;
        let energy =
            bits * (hops as f64 * self.link_energy_per_bit + routers * self.router_energy_per_bit);
        let serialization = if self.link_bandwidth > 0.0 {
            bits / self.link_bandwidth
        } else {
            0.0
        };
        let latency = hops as f64 * self.hop_latency + serialization;
        NocEnergy {
            energy,
            latency,
            hops,
        }
    }

    /// Average energy per bit for a route of `hops` hops.
    pub fn energy_per_bit(&self, hops: u32) -> f64 {
        hops as f64 * self.link_energy_per_bit + (hops as f64 + 1.0) * self.router_energy_per_bit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_hop_message_still_pays_local_router() {
        let m = LinkEnergyModel::nominal_16nm();
        let c = m.message_cost(Coord::new(2, 2), Coord::new(2, 2), 1000.0);
        assert_eq!(c.hops, 0);
        assert!(c.energy > 0.0);
        assert!((c.energy - 1000.0 * m.router_energy_per_bit).abs() < 1e-18);
    }

    #[test]
    fn energy_scales_linearly_with_bits() {
        let m = LinkEnergyModel::nominal_16nm();
        let a = m.message_cost(Coord::new(0, 0), Coord::new(3, 1), 100.0);
        let b = m.message_cost(Coord::new(0, 0), Coord::new(3, 1), 200.0);
        assert!((b.energy - 2.0 * a.energy).abs() < 1e-18);
    }

    #[test]
    fn energy_monotone_in_distance() {
        let m = LinkEnergyModel::nominal_16nm();
        let mut last = 0.0;
        for d in 0..10u16 {
            let c = m.message_cost(Coord::new(0, 0), Coord::new(d, 0), 1.0e3);
            assert!(c.energy > last);
            last = c.energy;
        }
    }

    #[test]
    fn latency_includes_serialization() {
        let m = LinkEnergyModel::nominal_16nm();
        let c = m.message_cost(Coord::new(0, 0), Coord::new(1, 0), 1280.0);
        let expected = m.hop_latency + 1280.0 / m.link_bandwidth;
        assert!((c.latency - expected).abs() < 1e-15);
    }

    #[test]
    fn scaled_energy_multiplies_both_terms() {
        let m = LinkEnergyModel::nominal_16nm().scaled_energy(3.0);
        let base = LinkEnergyModel::nominal_16nm();
        assert!((m.link_energy_per_bit - 3.0 * base.link_energy_per_bit).abs() < 1e-24);
        assert!((m.router_energy_per_bit - 3.0 * base.router_energy_per_bit).abs() < 1e-24);
        assert_eq!(m.hop_latency, base.hop_latency);
    }

    #[test]
    fn energy_per_bit_matches_message_cost() {
        let m = LinkEnergyModel::nominal_16nm();
        let c = m.message_cost(Coord::new(0, 0), Coord::new(2, 3), 1.0);
        assert!((c.energy - m.energy_per_bit(5)).abs() < 1e-24);
    }

    #[test]
    fn default_is_nominal() {
        assert_eq!(LinkEnergyModel::default(), LinkEnergyModel::nominal_16nm());
    }
}
