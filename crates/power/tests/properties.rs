//! Property tests of the power substrate.

use manytest_power::prelude::*;
use proptest::prelude::*;

fn arb_node() -> impl Strategy<Value = TechNode> {
    prop::sample::select(TechNode::ALL.to_vec())
}

proptest! {
    #[test]
    fn ladder_is_monotone_for_any_size(node in arb_node(), levels in 2usize..12) {
        let ladder = VfLadder::for_node(node, levels);
        prop_assert_eq!(ladder.len(), levels);
        let points: Vec<OperatingPoint> = ladder.iter().collect();
        for w in points.windows(2) {
            prop_assert!(w[1].voltage > w[0].voltage);
            prop_assert!(w[1].frequency > w[0].frequency);
        }
        let p = node.params();
        prop_assert!((ladder.max().voltage - p.v_nominal).abs() < 1e-12);
        prop_assert!((ladder.min().voltage - p.v_min).abs() < 1e-12);
    }

    #[test]
    fn power_model_is_positive_and_bounded(
        node in arb_node(),
        level in 0usize..5,
        activity in 0.0f64..1.0,
    ) {
        let model = PowerModel::for_node(node);
        let ladder = VfLadder::for_node(node, 5);
        let op = ladder.point(VfLevel(level as u8));
        let p = model.core_power(op, activity);
        prop_assert!(p > 0.0, "leakage keeps powered cores above zero");
        // No single core can draw more than the chip's peak-per-core.
        let peak = node.peak_power_all_cores() / node.core_count() as f64;
        prop_assert!(p <= peak * (1.0 + 1e-9));
    }

    #[test]
    fn budget_reserve_release_is_conservative(
        cap in 1.0f64..500.0,
        requests in prop::collection::vec(0.0f64..100.0, 1..40),
    ) {
        let mut budget = PowerBudget::new(cap);
        let mut granted = Vec::new();
        for watts in requests {
            match budget.reserve(watts) {
                Ok(r) => granted.push(r),
                Err(e) => {
                    prop_assert!(e.requested > e.available - 1e-9);
                }
            }
            prop_assert!(budget.reserved() <= cap + 1e-9);
        }
        let total: f64 = granted.iter().map(|r| r.watts()).sum();
        prop_assert!((budget.reserved() - total).abs() < 1e-6);
        for r in granted {
            budget.release(r);
        }
        prop_assert!(budget.reserved().abs() < 1e-9);
    }

    #[test]
    fn pid_cap_is_always_within_clamp(
        target in 1.0f64..200.0,
        measurements in prop::collection::vec(0.0f64..400.0, 1..100),
    ) {
        let mut pid = PidController::default_tuning();
        for m in measurements {
            let cap = pid.next_cap(target, m);
            prop_assert!(cap >= 0.2 * target - 1e-9);
            prop_assert!(cap <= 1.25 * target + 1e-9);
            prop_assert!(cap.is_finite());
        }
    }

    #[test]
    fn naive_policy_caps_are_two_valued(
        target in 1.0f64..200.0,
        measurements in prop::collection::vec(0.0f64..400.0, 1..100),
    ) {
        let mut naive = NaiveTdpPolicy::new();
        for m in measurements {
            let cap = naive.next_cap(target, m);
            let is_full = (cap - target).abs() < 1e-9;
            let is_throttled = (cap - 0.5 * target).abs() < 1e-9;
            prop_assert!(is_full || is_throttled);
        }
    }

    #[test]
    fn meter_shares_always_sum_to_one_or_zero(
        charges in prop::collection::vec((0usize..4, 0.0f64..100.0, 0.0f64..1.0), 0..50),
    ) {
        let mut meter = PowerMeter::new();
        for &(cat, watts, secs) in &charges {
            meter.add(PowerCategory::ALL[cat], watts, secs);
        }
        let sum: f64 = PowerCategory::ALL.iter().map(|&c| meter.total_share(c)).sum();
        if meter.total_energy_all() > 0.0 {
            prop_assert!((sum - 1.0).abs() < 1e-9);
        } else {
            prop_assert_eq!(sum, 0.0);
        }
    }

    #[test]
    fn highest_under_is_the_supremum(node in arb_node(), cap_scale in 0.0f64..2.0) {
        let model = PowerModel::for_node(node);
        let ladder = VfLadder::for_node(node, 5);
        let power_of = |op: OperatingPoint| model.core_power(op, 0.5);
        let cap = power_of(ladder.max()) * cap_scale;
        match ladder.highest_under(cap, power_of) {
            Some(op) => {
                prop_assert!(power_of(op) <= cap);
                // No higher level also fits.
                if let Some(up) = ladder.step_up(op.level) {
                    prop_assert!(power_of(ladder.point(up)) > cap);
                }
            }
            None => prop_assert!(power_of(ladder.min()) > cap),
        }
    }

    #[test]
    fn dark_fraction_matches_peak_and_tdp(node in arb_node()) {
        let p = node.params();
        let frac = node.dark_silicon_fraction();
        let peak = node.peak_power_all_cores();
        if peak <= p.tdp {
            prop_assert_eq!(frac, 0.0);
        } else {
            prop_assert!((frac - (1.0 - p.tdp / peak)).abs() < 1e-12);
        }
    }
}
