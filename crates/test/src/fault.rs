//! Fault injection and detection bookkeeping.
//!
//! Online testing exists to catch **latent permanent faults** — wear-out
//! damage that has already happened but has not yet corrupted an
//! application. The evaluation plants faults at chosen times and measures
//! how long the scheduler takes to find them (detection latency); a test
//! routine detects a fault in its block with probability equal to its
//! structural coverage.

use crate::routine::TestRoutine;
use manytest_power::VfLevel;
use manytest_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Lifecycle of an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultState {
    /// Injected but not yet present (injection time in the future).
    Pending,
    /// Present and undetected.
    Latent,
    /// Found by a test at the recorded time.
    Detected {
        /// When the detecting routine completed, seconds.
        at: f64,
    },
}

/// One injected permanent fault on one core.
///
/// Some wear-out faults are **voltage dependent**: a marginal transistor
/// may only violate timing at near-threshold voltage, or a leakage-induced
/// defect may only misbehave at nominal. `visible_from`/`visible_to`
/// bound the DVFS levels at which a test can observe the fault — this is
/// exactly why the journal version insists tests must "cover all the
/// voltage and frequency levels".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fault {
    /// The faulty core.
    pub core: usize,
    /// When the fault becomes present, seconds.
    pub inject_at: f64,
    /// Current lifecycle state.
    pub state: FaultState,
    /// Lowest DVFS level at which the fault is observable (inclusive).
    pub visible_from: VfLevel,
    /// Highest DVFS level at which the fault is observable (inclusive).
    pub visible_to: VfLevel,
}

impl Fault {
    /// Creates a fault observable at every DVFS level, injected at
    /// `inject_at` seconds.
    pub fn new(core: usize, inject_at: f64) -> Self {
        Fault {
            core,
            inject_at,
            state: FaultState::Pending,
            visible_from: VfLevel(0),
            visible_to: VfLevel(u8::MAX),
        }
    }

    /// Creates a voltage-dependent fault only observable when the test
    /// runs at a level in `[from, to]`.
    ///
    /// # Panics
    ///
    /// Panics if `from > to`.
    pub fn with_level_window(core: usize, inject_at: f64, from: VfLevel, to: VfLevel) -> Self {
        assert!(from <= to, "level window inverted");
        Fault {
            core,
            inject_at,
            state: FaultState::Pending,
            visible_from: from,
            visible_to: to,
        }
    }

    /// True if a test at `level` can observe this fault at all.
    pub fn visible_at(&self, level: VfLevel) -> bool {
        (self.visible_from..=self.visible_to).contains(&level)
    }

    /// Detection latency (detection time − injection time), if detected.
    pub fn detection_latency(&self) -> Option<f64> {
        match self.state {
            FaultState::Detected { at } => Some((at - self.inject_at).max(0.0)),
            _ => None,
        }
    }
}

/// The set of injected faults and their detection statistics.
///
/// # Examples
///
/// ```
/// use manytest_sbst::fault::{FaultLog, FaultState};
/// use manytest_sbst::routine::RoutineLibrary;
/// use manytest_sim::SimRng;
///
/// let mut log = FaultLog::new();
/// log.inject(2, 0.010);
/// log.activate_due(0.020);
/// let lib = RoutineLibrary::standard();
/// let mut rng = SimRng::seed_from(1);
/// // A completed routine on the faulty core may detect it.
/// let level = manytest_power::VfLevel(0);
/// let detected = log.on_test_complete(2, lib.routine(manytest_sbst::routine::RoutineId(0)), level, 0.021, &mut rng);
/// assert_eq!(detected, log.detected_count() == 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultLog {
    faults: Vec<Fault>,
}

impl FaultLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a fault on `core` at `inject_at` seconds, observable at
    /// every DVFS level.
    pub fn inject(&mut self, core: usize, inject_at: f64) {
        self.faults.push(Fault::new(core, inject_at));
    }

    /// Schedules a voltage-dependent fault observable only at levels in
    /// `[from, to]`.
    pub fn inject_windowed(&mut self, core: usize, inject_at: f64, from: VfLevel, to: VfLevel) {
        self.faults
            .push(Fault::with_level_window(core, inject_at, from, to));
    }

    /// Promotes pending faults whose injection time has passed to latent.
    pub fn activate_due(&mut self, now: f64) {
        self.activate_due_with(now, |_| {});
    }

    /// [`FaultLog::activate_due`] with a telemetry hook: `on_activate`
    /// receives the core of every fault promoted by this call.
    pub fn activate_due_with(&mut self, now: f64, mut on_activate: impl FnMut(usize)) {
        for f in &mut self.faults {
            if matches!(f.state, FaultState::Pending) && f.inject_at <= now {
                f.state = FaultState::Latent;
                on_activate(f.core);
            }
        }
    }

    /// Reports a completed `routine` on `core` at DVFS level `level` at
    /// time `now`: every latent fault on that core that is *visible at
    /// that level* is detected with probability `routine.coverage`.
    /// Returns true if at least one fault was detected by this run.
    pub fn on_test_complete(
        &mut self,
        core: usize,
        routine: &TestRoutine,
        level: VfLevel,
        now: f64,
        rng: &mut SimRng,
    ) -> bool {
        self.on_test_complete_with(core, routine, level, now, rng, |_, _| {})
    }

    /// [`FaultLog::on_test_complete`] with a telemetry hook: `on_detect`
    /// receives `(core, detection_latency_seconds)` for every fault this
    /// run detects. The RNG draw order is identical to the hook-less form.
    pub fn on_test_complete_with(
        &mut self,
        core: usize,
        routine: &TestRoutine,
        level: VfLevel,
        now: f64,
        rng: &mut SimRng,
        mut on_detect: impl FnMut(usize, f64),
    ) -> bool {
        let mut any = false;
        for f in &mut self.faults {
            if f.core == core
                && matches!(f.state, FaultState::Latent)
                && f.visible_at(level)
                && rng.gen_bool(routine.coverage)
            {
                f.state = FaultState::Detected { at: now };
                on_detect(f.core, (now - f.inject_at).max(0.0));
                any = true;
            }
        }
        any
    }

    /// All faults in injection order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of injected faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True if nothing was injected.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of detected faults.
    pub fn detected_count(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| matches!(f.state, FaultState::Detected { .. }))
            .count()
    }

    /// Number of faults still latent at the end of the run.
    pub fn latent_count(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| matches!(f.state, FaultState::Latent))
            .count()
    }

    /// Mean detection latency over detected faults, seconds.
    pub fn mean_detection_latency(&self) -> Option<f64> {
        let latencies: Vec<f64> = self
            .faults
            .iter()
            .filter_map(Fault::detection_latency)
            .collect();
        if latencies.is_empty() {
            None
        } else {
            Some(latencies.iter().sum::<f64>() / latencies.len() as f64)
        }
    }

    /// Worst detection latency over detected faults, seconds.
    pub fn max_detection_latency(&self) -> Option<f64> {
        self.faults
            .iter()
            .filter_map(Fault::detection_latency)
            .fold(None, |acc, l| Some(acc.map_or(l, |a: f64| a.max(l))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routine::RoutineLibrary;

    use crate::routine::RoutineId;

    fn routine() -> TestRoutine {
        RoutineLibrary::standard().routine(RoutineId(0)).clone()
    }

    fn certain_routine() -> TestRoutine {
        TestRoutine::new("perfect", 1_000, 0.8, 1.0)
    }

    #[test]
    fn lifecycle_pending_latent_detected() {
        let mut log = FaultLog::new();
        log.inject(0, 1.0);
        assert!(matches!(log.faults()[0].state, FaultState::Pending));
        log.activate_due(0.5);
        assert!(matches!(log.faults()[0].state, FaultState::Pending));
        log.activate_due(1.0);
        assert!(matches!(log.faults()[0].state, FaultState::Latent));
        let mut rng = SimRng::seed_from(1);
        let hit = log.on_test_complete(0, &certain_routine(), VfLevel(0), 2.5, &mut rng);
        assert!(hit);
        assert_eq!(log.detected_count(), 1);
        assert_eq!(log.faults()[0].detection_latency(), Some(1.5));
    }

    #[test]
    fn tests_on_other_cores_do_not_detect() {
        let mut log = FaultLog::new();
        log.inject(3, 0.0);
        log.activate_due(1.0);
        let mut rng = SimRng::seed_from(2);
        assert!(!log.on_test_complete(4, &certain_routine(), VfLevel(0), 2.0, &mut rng));
        assert_eq!(log.latent_count(), 1);
    }

    #[test]
    fn pending_faults_are_not_detectable() {
        let mut log = FaultLog::new();
        log.inject(0, 10.0);
        let mut rng = SimRng::seed_from(3);
        assert!(!log.on_test_complete(0, &certain_routine(), VfLevel(0), 1.0, &mut rng));
        assert_eq!(log.detected_count(), 0);
    }

    #[test]
    fn detection_is_probabilistic_with_partial_coverage() {
        // coverage 0.95 over many trials: most but not all single attempts
        // succeed.
        let mut hits = 0;
        for seed in 0..200 {
            let mut log = FaultLog::new();
            log.inject(0, 0.0);
            log.activate_due(0.0);
            let mut rng = SimRng::seed_from(seed);
            if log.on_test_complete(0, &routine(), VfLevel(0), 1.0, &mut rng) {
                hits += 1;
            }
        }
        assert!((170..=200).contains(&hits), "hits = {hits}");
        assert!(hits < 200 || routine().coverage == 1.0);
    }

    #[test]
    fn latency_statistics() {
        let mut log = FaultLog::new();
        log.inject(0, 0.0);
        log.inject(1, 0.0);
        log.activate_due(0.0);
        let mut rng = SimRng::seed_from(4);
        log.on_test_complete(0, &certain_routine(), VfLevel(0), 1.0, &mut rng);
        log.on_test_complete(1, &certain_routine(), VfLevel(0), 3.0, &mut rng);
        assert_eq!(log.mean_detection_latency(), Some(2.0));
        assert_eq!(log.max_detection_latency(), Some(3.0));
    }

    #[test]
    fn empty_log_statistics() {
        let log = FaultLog::new();
        assert!(log.is_empty());
        assert_eq!(log.mean_detection_latency(), None);
        assert_eq!(log.max_detection_latency(), None);
        assert_eq!(log.detected_count(), 0);
    }

    #[test]
    fn level_window_gates_detection() {
        let mut log = FaultLog::new();
        // Observable only at levels 0..=1 (a near-threshold-only fault).
        log.inject_windowed(0, 0.0, VfLevel(0), VfLevel(1));
        log.activate_due(0.0);
        let mut rng = SimRng::seed_from(9);
        // Testing at nominal (level 4) cannot see it.
        assert!(!log.on_test_complete(0, &certain_routine(), VfLevel(4), 1.0, &mut rng));
        assert_eq!(log.latent_count(), 1);
        // Testing inside the window catches it.
        assert!(log.on_test_complete(0, &certain_routine(), VfLevel(1), 2.0, &mut rng));
        assert_eq!(log.detected_count(), 1);
    }

    #[test]
    fn unwindowed_faults_are_visible_everywhere() {
        let f = Fault::new(3, 0.0);
        for level in 0..=10u8 {
            assert!(f.visible_at(VfLevel(level)));
        }
    }

    #[test]
    #[should_panic(expected = "window inverted")]
    fn inverted_window_panics() {
        Fault::with_level_window(0, 0.0, VfLevel(3), VfLevel(1));
    }

    #[test]
    fn telemetry_hooks_see_activations_and_detections() {
        let mut log = FaultLog::new();
        log.inject(2, 1.0);
        log.inject(5, 3.0);
        let mut activated = Vec::new();
        log.activate_due_with(2.0, |core| activated.push(core));
        assert_eq!(activated, vec![2], "only the due fault activates");
        let mut rng = SimRng::seed_from(6);
        let mut detections = Vec::new();
        let hit = log.on_test_complete_with(
            2,
            &certain_routine(),
            VfLevel(0),
            4.5,
            &mut rng,
            |core, latency| detections.push((core, latency)),
        );
        assert!(hit);
        assert_eq!(detections, vec![(2, 3.5)]);
    }

    #[test]
    fn already_detected_faults_stay_detected() {
        let mut log = FaultLog::new();
        log.inject(0, 0.0);
        log.activate_due(0.0);
        let mut rng = SimRng::seed_from(5);
        log.on_test_complete(0, &certain_routine(), VfLevel(0), 1.0, &mut rng);
        log.on_test_complete(0, &certain_routine(), VfLevel(0), 9.0, &mut rng);
        assert_eq!(log.faults()[0].detection_latency(), Some(1.0));
    }
}
