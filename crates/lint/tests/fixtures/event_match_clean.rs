pub fn tally(ev: &SimEvent) -> u32 {
    match ev {
        SimEvent::TestCompleted { .. } => 1,
        SimEvent::TestAborted { .. } => 2,
        SimEvent::AppArrived { .. } => 3,
    }
}

pub fn sample(ev: &SimEvent) -> u32 {
    match ev {
        SimEvent::TestCompleted { .. } => 1,
        // lint:allow(event-match-exhaustiveness, reason = "fixture: subset contract — completions only")
        _ => 0,
    }
}

pub fn unrelated(x: Option<u32>) -> u32 {
    // Matches that never touch a guarded enum are out of scope.
    match x {
        Some(v) => v,
        _ => 0,
    }
}
