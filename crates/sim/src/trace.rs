//! Lightweight time-series tracing.
//!
//! The bench harness regenerates the paper's figures from traces recorded
//! during a run: power over time, utilisation over time, tests in flight, …
//! A [`Trace`] is a named collection of [`TraceSeries`], each a vector of
//! `(t_seconds, value)` points.

use crate::wire::{Wire, WireError, WireReader, WireWriter};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A single named series of `(time, value)` samples.
///
/// A series is unbounded by default. [`TraceSeries::with_bound`] caps the
/// stored sample count: when the cap is reached the series halves itself
/// (keeping every second point) and doubles its sampling stride, so a
/// multi-second run records a uniform thinning of the full signal in
/// bounded memory instead of growing without limit.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceSeries {
    points: Vec<(f64, f64)>,
    bound: Option<usize>,
    /// Keep one sample out of every `stride` offered (power of two).
    stride: u64,
    /// Samples offered via `push` over the series' lifetime.
    seen: u64,
}

impl TraceSeries {
    /// Creates an empty, unbounded series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty series that stores at most `max_samples` points,
    /// decimating on insert once the cap is reached.
    ///
    /// # Panics
    ///
    /// Panics if `max_samples < 2` — a bounded series must at least be
    /// able to retain a first and a latest sample.
    pub fn with_bound(max_samples: usize) -> Self {
        assert!(
            max_samples >= 2,
            "trace bound must be at least 2, got {max_samples}"
        );
        TraceSeries {
            bound: Some(max_samples),
            ..Self::default()
        }
    }

    /// The sample cap, if this series is bounded.
    pub fn bound(&self) -> Option<usize> {
        self.bound
    }

    /// Appends a sample at time `t` (seconds). On a bounded series the
    /// sample may be decimated away; the thinning is deterministic (a
    /// function of the push count alone, never of time or memory).
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the last recorded sample.
    pub fn push(&mut self, t: f64, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "trace time must be monotone: {t} < {last}");
        }
        let stride = self.stride.max(1);
        let keep = self.seen % stride == 0;
        self.seen += 1;
        if !keep {
            return;
        }
        if let Some(bound) = self.bound {
            if self.points.len() >= bound {
                // Halve: keep even indices (offered-index multiples of the
                // doubled stride), then record every second sample onward.
                let mut i = 0;
                self.points.retain(|_| {
                    let keep = i % 2 == 0;
                    i += 1;
                    keep
                });
                self.stride = stride * 2;
                if (self.seen - 1) % self.stride != 0 {
                    return; // this sample falls off the coarser grid
                }
            }
        }
        self.points.push((t, value));
    }

    /// The recorded samples.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest recorded value, if any.
    pub fn max_value(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).fold(None, |acc, v| {
            Some(acc.map_or(v, |a: f64| a.max(v)))
        })
    }

    /// Arithmetic mean of the recorded values (unweighted), if any.
    pub fn mean_value(&self) -> Option<f64> {
        if self.points.is_empty() {
            None
        } else {
            Some(self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64)
        }
    }

    /// Downsamples to at most `n` evenly spaced points (keeps endpoints).
    /// Index rounding never emits the same source point twice, so the
    /// result can be shorter than `n` for very small `n`.
    pub fn downsample(&self, n: usize) -> TraceSeries {
        if n == 0 || self.points.len() <= n {
            return self.clone();
        }
        let last_idx = self.points.len() - 1;
        let step = last_idx as f64 / (n - 1) as f64;
        let mut points = Vec::with_capacity(n);
        let mut prev = usize::MAX;
        for i in 0..n {
            // n == 1 makes step infinite and 0 * inf NaN; the saturating
            // cast turns both into index 0, which is the right endpoint.
            let idx = ((i as f64 * step).round() as usize).min(last_idx);
            if idx != prev {
                points.push(self.points[idx]);
                prev = idx;
            }
        }
        TraceSeries {
            points,
            ..Self::default()
        }
    }
}

/// A named bundle of trace series.
///
/// # Examples
///
/// ```
/// use manytest_sim::trace::Trace;
///
/// let mut trace = Trace::new();
/// trace.series_mut("power_w").push(0.0, 45.0);
/// trace.series_mut("power_w").push(0.001, 47.5);
/// assert_eq!(trace.series("power_w").unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    series: BTreeMap<String, TraceSeries>,
    default_bound: Option<usize>,
}

impl Trace {
    /// Creates an empty trace; series created through it are unbounded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trace whose series each store at most
    /// `max_samples` points (decimating on insert once full).
    ///
    /// # Panics
    ///
    /// Panics if `max_samples < 2` (see [`TraceSeries::with_bound`]).
    pub fn bounded(max_samples: usize) -> Self {
        assert!(
            max_samples >= 2,
            "trace bound must be at least 2, got {max_samples}"
        );
        Trace {
            series: BTreeMap::new(),
            default_bound: Some(max_samples),
        }
    }

    /// Returns the series with the given name, creating it if absent
    /// (with this trace's default sample bound, if any).
    // lint:effect(warmup, reason = "first touch of a series name allocates its key and buffer once; steady-state epochs append into bounded storage")
    pub fn series_mut(&mut self, name: &str) -> &mut TraceSeries {
        let bound = self.default_bound;
        self.series.entry(name.to_owned()).or_insert_with(|| {
            bound.map_or_else(TraceSeries::new, TraceSeries::with_bound)
        })
    }

    /// Returns the series with the given name, if recorded.
    pub fn series(&self, name: &str) -> Option<&TraceSeries> {
        self.series.get(name)
    }

    /// Names of all recorded series, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Number of recorded series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True if no series were recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Renders the trace as CSV with one `time` column per series block.
    pub fn to_csv(&self) -> String {
        use fmt::Write as _;
        let total: usize = self.series.values().map(TraceSeries::len).sum();
        let mut out = String::with_capacity(total * 16);
        for (name, series) in &self.series {
            let _ = writeln!(out, "# series: {name}");
            out.push_str("t_seconds,value\n");
            for (t, v) in series.points() {
                let _ = writeln!(out, "{t},{v}");
            }
        }
        out
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Trace({} series", self.series.len())?;
        for (name, s) in &self.series {
            write!(f, "; {name}: {} pts", s.len())?;
        }
        write!(f, ")")
    }
}

// Wire impls live beside the types so the exhaustive destructuring keeps
// the codec honest when a field is added.

impl Wire for TraceSeries {
    fn encode(&self, w: &mut WireWriter) {
        let TraceSeries { points, bound, stride, seen } = self;
        points.encode(w);
        bound.encode(w);
        w.u64(*stride);
        w.u64(*seen);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(TraceSeries {
            points: Vec::<(f64, f64)>::decode(r)?,
            bound: Option::<usize>::decode(r)?,
            stride: r.u64()?,
            seen: r.u64()?,
        })
    }
}

impl Wire for Trace {
    fn encode(&self, w: &mut WireWriter) {
        let Trace { series, default_bound } = self;
        w.u64(series.len() as u64);
        for (name, s) in series {
            w.str(name);
            s.encode(w);
        }
        default_bound.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.u64()?;
        let mut series = BTreeMap::new();
        for _ in 0..len {
            let name = r.str()?;
            let s = TraceSeries::decode(r)?;
            series.insert(name, s);
        }
        let default_bound = Option::<usize>::decode(r)?;
        Ok(Trace { series, default_bound })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut s = TraceSeries::new();
        s.push(0.0, 1.0);
        s.push(1.0, 2.0);
        assert_eq!(s.points(), &[(0.0, 1.0), (1.0, 2.0)]);
        assert_eq!(s.max_value(), Some(2.0));
        assert_eq!(s.mean_value(), Some(1.5));
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_push_panics() {
        let mut s = TraceSeries::new();
        s.push(2.0, 1.0);
        s.push(1.0, 1.0);
    }

    #[test]
    fn equal_times_are_allowed() {
        let mut s = TraceSeries::new();
        s.push(1.0, 1.0);
        s.push(1.0, 2.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn empty_series_stats() {
        let s = TraceSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.max_value(), None);
        assert_eq!(s.mean_value(), None);
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let mut s = TraceSeries::new();
        for i in 0..100 {
            s.push(i as f64, i as f64);
        }
        let d = s.downsample(5);
        assert_eq!(d.len(), 5);
        assert_eq!(d.points()[0], (0.0, 0.0));
        assert_eq!(d.points()[4], (99.0, 99.0));
    }

    #[test]
    fn downsample_noop_when_small() {
        let mut s = TraceSeries::new();
        s.push(0.0, 1.0);
        assert_eq!(s.downsample(10), s);
        assert_eq!(s.downsample(0), s);
    }

    #[test]
    fn trace_series_registry() {
        let mut t = Trace::new();
        t.series_mut("b").push(0.0, 1.0);
        t.series_mut("a").push(0.0, 2.0);
        assert_eq!(t.len(), 2);
        let names: Vec<&str> = t.names().collect();
        assert_eq!(names, vec!["a", "b"]); // sorted
        assert!(t.series("missing").is_none());
    }

    #[test]
    fn csv_contains_all_series() {
        let mut t = Trace::new();
        t.series_mut("x").push(0.5, 3.5);
        let csv = t.to_csv();
        assert!(csv.contains("# series: x"));
        assert!(csv.contains("0.5,3.5"));
    }

    #[test]
    fn display_is_nonempty() {
        let t = Trace::new();
        assert!(!format!("{t}").is_empty());
    }

    #[test]
    fn downsample_never_duplicates_points_for_small_n() {
        // Sweep small (len, n) pairs: output times must be strictly
        // increasing (a duplicated source index would repeat a time) and
        // both endpoints must survive whenever n >= 2.
        for len in 2..20usize {
            let mut s = TraceSeries::new();
            for i in 0..len {
                s.push(i as f64, i as f64);
            }
            for n in 1..=len {
                let d = s.downsample(n);
                assert!(d.len() <= n, "len {len} n {n}");
                let times: Vec<f64> = d.points().iter().map(|&(t, _)| t).collect();
                for w in times.windows(2) {
                    assert!(w[0] < w[1], "duplicate point at len {len} n {n}");
                }
                assert_eq!(times[0], 0.0, "first endpoint at len {len} n {n}");
                if n >= 2 {
                    assert_eq!(
                        *times.last().unwrap(),
                        (len - 1) as f64,
                        "last endpoint at len {len} n {n}"
                    );
                }
            }
        }
    }

    #[test]
    fn downsample_to_one_point_keeps_first() {
        let mut s = TraceSeries::new();
        for i in 0..5 {
            s.push(i as f64, 10.0 * i as f64);
        }
        let d = s.downsample(1);
        assert_eq!(d.points(), &[(0.0, 0.0)]);
    }

    #[test]
    fn bounded_series_caps_length_and_keeps_endpoint_spread() {
        let mut s = TraceSeries::with_bound(8);
        for i in 0..100 {
            s.push(i as f64, i as f64);
        }
        assert!(s.len() <= 8, "len {} exceeds bound", s.len());
        assert!(s.len() >= 4, "decimation should not empty the series");
        assert_eq!(s.points()[0], (0.0, 0.0), "first sample survives");
        // Samples stay uniformly strided over the offered index space.
        let times: Vec<f64> = s.points().iter().map(|&(t, _)| t).collect();
        let stride = times[1] - times[0];
        for w in times.windows(2) {
            assert_eq!(w[1] - w[0], stride, "uniform stride");
        }
        assert_eq!(s.bound(), Some(8));
    }

    #[test]
    fn bounded_series_is_deterministic_in_push_count_only() {
        let run = || {
            let mut s = TraceSeries::with_bound(4);
            for i in 0..33 {
                s.push(i as f64 * 0.5, i as f64);
            }
            s
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn trace_bound_below_two_panics() {
        let _ = TraceSeries::with_bound(1);
    }

    #[test]
    fn decimation_at_exact_power_of_two_boundaries() {
        // Push exactly 2^k samples into a bound-8 series for each k and
        // pin the retained contents: on the boundary the series holds
        // every stride-th offer-index starting at 0, with stride equal to
        // the smallest power of two that fits 2^k offers into 8 slots.
        for k in 3..=10u32 {
            let n = 2u64.pow(k);
            let mut s = TraceSeries::with_bound(8);
            for i in 0..n {
                s.push(i as f64, i as f64);
            }
            let times: Vec<u64> = s.points().iter().map(|&(t, _)| t as u64).collect();
            let stride = if n <= 8 { 1 } else { n / 8 };
            let expected: Vec<u64> = (0..n).step_by(stride as usize).collect();
            assert_eq!(times, expected, "n = {n}");
            assert_eq!(times.len(), 8.min(n as usize), "exactly full at n = {n}");
        }
    }

    #[test]
    fn decimation_one_past_power_of_two_halves_once() {
        // The 2^k-th push (0-indexed offer 2^k) lands exactly when the
        // series is full: it must trigger one halving, leaving bound/2
        // survivors plus the new sample iff it falls on the doubled grid.
        let mut s = TraceSeries::with_bound(8);
        for i in 0..=8u64 {
            s.push(i as f64, i as f64);
        }
        // Offers 0..8 filled the ring; offer 8 halves to {0,2,4,6},
        // doubles the stride to 2, and 8 % 2 == 0 so it is retained.
        let times: Vec<u64> = s.points().iter().map(|&(t, _)| t as u64).collect();
        assert_eq!(times, vec![0, 2, 4, 6, 8]);
        // The next odd offer falls off the coarser grid…
        s.push(9.0, 9.0);
        let times: Vec<u64> = s.points().iter().map(|&(t, _)| t as u64).collect();
        assert_eq!(times, vec![0, 2, 4, 6, 8]);
        // …and the next even offer lands on it.
        s.push(10.0, 10.0);
        let times: Vec<u64> = s.points().iter().map(|&(t, _)| t as u64).collect();
        assert_eq!(times, vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn minimum_bound_of_two_survives_power_of_two_sweep() {
        let mut s = TraceSeries::with_bound(2);
        for i in 0..1024u64 {
            s.push(i as f64, i as f64);
        }
        assert!(s.len() <= 2);
        assert_eq!(s.points()[0].0, 0.0, "first sample survives");
    }

    #[test]
    fn bounded_trace_applies_bound_to_new_series() {
        let mut t = Trace::bounded(4);
        for i in 0..50 {
            t.series_mut("p").push(i as f64, 1.0);
        }
        assert!(t.series("p").unwrap().len() <= 4);
        // Unbounded traces stay unbounded.
        let mut u = Trace::new();
        for i in 0..50 {
            u.series_mut("p").push(i as f64, 1.0);
        }
        assert_eq!(u.series("p").unwrap().len(), 50);
    }
}
