//! Source files and the workspace model the rules run against.

use crate::allow::{parse_allows, Allow};
use crate::lexer::{lex, Token, TokenKind};
use std::path::{Path, PathBuf};

/// One lexed source file plus the derived facts rules care about.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated (used in
    /// diagnostics and for crate scoping).
    pub rel_path: String,
    /// Raw text.
    pub text: String,
    /// Token stream (comments included).
    pub tokens: Vec<Token>,
    /// Per-line flag: true when the line sits inside a `#[cfg(test)]`
    /// module (index 0 = line 1). Lines past the end are not test code.
    pub test_lines: Vec<bool>,
    /// Parsed `lint:allow` suppressions.
    pub allows: Vec<Allow>,
}

impl SourceFile {
    /// Builds a source file from in-memory text. `rel_path` may be
    /// virtual — fixtures use paths like `crates/core/src/x.rs` to opt
    /// into crate-scoped rules.
    pub fn from_source(rel_path: impl Into<String>, text: impl Into<String>) -> Self {
        let rel_path = rel_path.into().replace('\\', "/");
        let text = text.into();
        let tokens = lex(&text);
        let test_lines = mark_test_lines(&text, &tokens);
        let allows = parse_allows(&tokens);
        SourceFile {
            rel_path,
            text,
            tokens,
            test_lines,
            allows,
        }
    }

    /// The crate this file belongs to (`crates/<name>/…` → `<name>`);
    /// files outside `crates/` (root `src/`, `tests/`, `examples/`)
    /// report the root package name `manytest`.
    pub fn crate_name(&self) -> &str {
        let mut parts = self.rel_path.split('/');
        if parts.next() == Some("crates") {
            parts.next().unwrap_or("manytest")
        } else {
            "manytest"
        }
    }

    /// Whether the whole file is test/bench/example code by location.
    pub fn is_test_file(&self) -> bool {
        self.rel_path.split('/').any(|seg| {
            seg == "tests" || seg == "benches" || seg == "examples" || seg == "fixtures"
        })
    }

    /// Whether 1-based `line` is inside a `#[cfg(test)]` module.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines
            .get(line.saturating_sub(1) as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Tokens with comments stripped — what most rules scan.
    pub fn code_tokens(&self) -> impl Iterator<Item = &Token> {
        self.tokens.iter().filter(|t| t.kind != TokenKind::Comment)
    }
}

/// Marks the lines covered by `#[cfg(test)] mod … { … }` blocks.
///
/// Token-level scan: find the attribute sequence `#` `[` `cfg` `(`
/// `test` `)` `]`, skip any further attributes, expect `mod`, then
/// brace-match to the module's end.
fn mark_test_lines(text: &str, tokens: &[Token]) -> Vec<bool> {
    let line_count = text.lines().count();
    let mut mask = vec![false; line_count];
    let code: Vec<&Token> = tokens.iter().filter(|t| t.kind != TokenKind::Comment).collect();
    let mut i = 0;
    while i + 6 < code.len() {
        let is_cfg_test = code[i].is_punct('#')
            && code[i + 1].is_punct('[')
            && code[i + 2].is_ident("cfg")
            && code[i + 3].is_punct('(')
            && code[i + 4].is_ident("test")
            && code[i + 5].is_punct(')')
            && code[i + 6].is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = code[i].line;
        let mut j = i + 7;
        // Skip stacked attributes between cfg(test) and the item.
        while j < code.len() && code[j].is_punct('#') {
            let mut depth = 0i32;
            j += 1;
            while j < code.len() {
                if code[j].is_punct('[') {
                    depth += 1;
                } else if code[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Only `mod` blocks get the whole-region treatment; a
        // `#[cfg(test)]` fn/use is covered by its own item anyway.
        if j < code.len() && code[j].is_ident("mod") {
            // Find the opening brace, then its match.
            while j < code.len() && !code[j].is_punct('{') {
                j += 1;
            }
            let mut depth = 0i32;
            let mut end_line = start_line;
            while j < code.len() {
                if code[j].is_punct('{') {
                    depth += 1;
                } else if code[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        end_line = code[j].line;
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
            if depth != 0 {
                end_line = line_count as u32; // unterminated: to EOF
            }
            for line in start_line..=end_line {
                if let Some(slot) = mask.get_mut(line.saturating_sub(1) as usize) {
                    *slot = true;
                }
            }
            i = j;
        } else {
            i += 7;
        }
    }
    mask
}

/// The lintable workspace: every source file plus the root for rules
/// that read non-Rust inputs (golden JSONs, docs).
pub struct Workspace {
    /// Absolute path of the workspace root.
    pub root: PathBuf,
    /// All lexed `.rs` files, sorted by `rel_path`.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Loads every `.rs` file under `root`, skipping build output,
    /// VCS metadata, the dependency shims and the analyzer's own
    /// violation fixtures.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut files = Vec::new();
        let mut stack = vec![root.to_path_buf()];
        while let Some(dir) = stack.pop() {
            let mut entries: Vec<_> = std::fs::read_dir(&dir)?
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .map(|e| e.path())
                .collect();
            entries.sort();
            for path in entries {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                if is_skipped(&rel) {
                    continue;
                }
                if path.is_dir() {
                    stack.push(path);
                } else if rel.ends_with(".rs") {
                    let text = std::fs::read_to_string(&path)?;
                    files.push(SourceFile::from_source(rel, text));
                }
            }
        }
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
        })
    }

    /// Builds a workspace from in-memory sources (fixture tests).
    pub fn from_sources(root: impl Into<PathBuf>, sources: Vec<SourceFile>) -> Workspace {
        let mut files = sources;
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        Workspace {
            root: root.into(),
            files,
        }
    }

    /// The file at `rel_path`, if loaded.
    pub fn file(&self, rel_path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel_path == rel_path)
    }
}

/// Subtrees the workspace scan never descends into.
fn is_skipped(rel: &str) -> bool {
    rel == "target"
        || rel.starts_with("target/")
        || rel == ".git"
        || rel.starts_with(".git/")
        || rel == "crates/shims"
        || rel.starts_with("crates/shims/")
        || rel == "crates/lint/tests/fixtures"
        || rel.starts_with("crates/lint/tests/fixtures/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_name_from_path() {
        let f = SourceFile::from_source("crates/core/src/system.rs", "fn main() {}");
        assert_eq!(f.crate_name(), "core");
        let f = SourceFile::from_source("src/lib.rs", "fn main() {}");
        assert_eq!(f.crate_name(), "manytest");
    }

    #[test]
    fn cfg_test_module_lines_are_marked() {
        let src = "fn a() {}\n\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let f = SourceFile::from_source("crates/core/src/x.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(f.is_test_line(6));
        assert!(!f.is_test_line(7));
    }

    #[test]
    fn test_file_locations() {
        assert!(SourceFile::from_source("crates/bench/tests/x.rs", "").is_test_file());
        assert!(SourceFile::from_source("examples/quickstart.rs", "").is_test_file());
        assert!(!SourceFile::from_source("crates/core/src/system.rs", "").is_test_file());
    }
}
