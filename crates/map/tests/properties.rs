//! Property tests of the mapping strategies.

use manytest_map::prelude::*;
use manytest_noc::Mesh2D;
use manytest_sim::SimRng;
use manytest_workload::TaskGraphGenerator;
use proptest::prelude::*;

fn random_context(mesh: Mesh2D, seed: u64, occupancy: f64) -> MapContext {
    let mut rng = SimRng::seed_from(seed);
    let mut ctx = MapContext::all_free(mesh);
    for c in mesh.coords() {
        if rng.gen_bool(occupancy) {
            ctx.set_free(c, false);
        }
        ctx.set_utilization(c, rng.next_f64());
        ctx.set_criticality(c, rng.next_f64() * 4.0);
    }
    ctx
}

proptest! {
    #[test]
    fn mappings_are_always_valid_or_absent(
        seed in any::<u64>(),
        edge in 4u16..12,
        occupancy in 0.0f64..0.9,
    ) {
        let mesh = Mesh2D::new(edge, edge);
        let ctx = random_context(mesh, seed, occupancy);
        let mut rng = SimRng::seed_from(seed ^ 0xABCD);
        let app = TaskGraphGenerator::default().generate(&mut rng, "prop");
        for mapper in [&ConaMapper::new() as &dyn Mapper, &TestAwareMapper::default()] {
            match mapper.map(&ctx, &app) {
                Some(m) => {
                    prop_assert!(m.is_valid_for(mesh, &app));
                    for &c in m.coords() {
                        prop_assert!(ctx.is_free(c), "{} used occupied {c}", mapper.name());
                    }
                }
                None => {
                    prop_assert!(
                        ctx.free_count() < app.task_count(),
                        "{} refused although {} cores were free for {} tasks",
                        mapper.name(),
                        ctx.free_count(),
                        app.task_count()
                    );
                }
            }
        }
    }

    #[test]
    fn mapping_is_deterministic(seed in any::<u64>(), edge in 4u16..10) {
        let mesh = Mesh2D::new(edge, edge);
        let ctx = random_context(mesh, seed, 0.3);
        let mut rng = SimRng::seed_from(seed);
        let app = TaskGraphGenerator::default().generate(&mut rng, "prop");
        let tum = TestAwareMapper::default();
        prop_assert_eq!(tum.map(&ctx, &app), tum.map(&ctx, &app));
    }

    #[test]
    fn hop_cost_is_nonnegative_and_zero_only_for_trivial(
        seed in any::<u64>(),
    ) {
        let mesh = Mesh2D::new(10, 10);
        let ctx = MapContext::all_free(mesh);
        let mut rng = SimRng::seed_from(seed);
        let app = TaskGraphGenerator::default().generate(&mut rng, "prop");
        let m = ConaMapper::new().map(&ctx, &app).unwrap();
        let cost = m.weighted_hop_cost(&app);
        prop_assert!(cost >= 0.0);
        if app.edges().is_empty() {
            prop_assert_eq!(cost, 0.0);
        }
    }

    #[test]
    fn tum_penalty_never_picks_strictly_dominated_cores(
        seed in any::<u64>(),
    ) {
        // One-task app, all free, uniform utilisation: the chosen core must
        // be among the minimum-criticality cores.
        let mesh = Mesh2D::new(6, 6);
        let mut ctx = MapContext::all_free(mesh);
        let mut rng = SimRng::seed_from(seed);
        let mut min_crit = f64::INFINITY;
        for c in mesh.coords() {
            let crit = (rng.gen_range(4) + 1) as f64;
            ctx.set_criticality(c, crit);
            min_crit = min_crit.min(crit);
        }
        let mut g = manytest_workload::TaskGraph::new("solo");
        g.add_task(manytest_workload::Task { instructions: 1_000 });
        let m = TestAwareMapper::new(0.0, 1.0).map(&ctx, &g).unwrap();
        let chosen = m.coords()[0];
        prop_assert!(
            (ctx.criticality(chosen) - min_crit).abs() < 1e-9,
            "picked criticality {} but minimum was {min_crit}",
            ctx.criticality(chosen)
        );
    }

    #[test]
    fn bounding_box_contains_all_tasks(seed in any::<u64>()) {
        let mesh = Mesh2D::new(12, 12);
        let ctx = MapContext::all_free(mesh);
        let mut rng = SimRng::seed_from(seed);
        let app = TaskGraphGenerator::default().generate(&mut rng, "prop");
        let m = TestAwareMapper::default().map(&ctx, &app).unwrap();
        prop_assert!(m.bounding_box_area() >= app.task_count());
    }
}
