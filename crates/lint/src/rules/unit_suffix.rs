//! `unit-suffix-consistency`: arithmetic that mixes `_us`/`_ms`/`_s`
//! (time) or `_w`/`_mw` (power) suffixed identifiers without an
//! explicit conversion is flagged.
//!
//! The codebase encodes units in identifier suffixes instead of newtype
//! wrappers (hot-path structs stay `f64`-flat for the kernels), which
//! makes `epoch_us + budget_ms` or `cap_w < draw_mw` typo-quiet: the
//! compiler sees two `f64`s and the golden files drift by 1000×. The
//! rule checks the two identifiers *directly adjacent* to a binary
//! `+`/`-`/comparison operator: a conversion factor between them
//! (`a_ms * 1000 + b_us`) breaks adjacency and exempts the expression
//! naturally, so only genuinely unconverted mixes fire.

use super::{Rule, SIM_CRATES};
use crate::diag::Finding;
use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

pub struct UnitSuffixConsistency;

/// Suffix groups: identifiers in the same group must agree on the unit
/// when combined arithmetically.
const GROUPS: [(&str, &[&str]); 2] = [
    ("time", &["us", "ms", "s"]),
    ("power", &["w", "mw"]),
];

impl Rule for UnitSuffixConsistency {
    fn id(&self) -> &'static str {
        "unit-suffix-consistency"
    }

    fn description(&self) -> &'static str {
        "arithmetic mixing _us/_ms/_s or _w/_mw suffixed identifiers needs an explicit \
         conversion"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !SIM_CRATES.contains(&file.crate_name()) || file.is_test_file() {
            return;
        }
        let code: Vec<&Token> = file.code_tokens().collect();
        for (i, tok) in code.iter().enumerate() {
            if file.is_test_line(tok.line) {
                continue;
            }
            let Some(op) = binary_op(&code, i) else { continue };
            let Some((left, lu, lg)) = operand(&code, i, false) else { continue };
            let Some((right, ru, rg)) = operand(&code, i + op, true) else { continue };
            if lg == rg && lu != ru {
                out.push(Finding {
                    rule: self.id(),
                    file: file.rel_path.clone(),
                    line: tok.line,
                    col: tok.col,
                    message: format!(
                        "`{left}` (_{lu}) and `{right}` (_{ru}) mix {lg} units without an \
                         explicit conversion"
                    ),
                    rationale: "unit suffixes are the only unit system the f64-flat hot-path \
                                structs have; a silent _ms/_us mix drifts goldens by 1000× — \
                                insert the conversion factor next to the operator or rename \
                                the identifier",
                });
            }
        }
    }
}

/// Recognises a binary operator starting at token `i`; returns its
/// token length. Covers `+ - < > <= >= == !=` (and `+=`/`-=`);
/// multiplication and division are conversions by definition.
fn binary_op(code: &[&Token], i: usize) -> Option<usize> {
    let t = code[i];
    let next_is = |k: usize, c: char| code.get(i + k).is_some_and(|n| n.is_punct(c));
    if t.is_punct('+') || t.is_punct('-') {
        // `a -= b` still combines the two operands.
        return Some(if next_is(1, '=') { 2 } else { 1 });
    }
    if (t.is_punct('<') || t.is_punct('>')) && !next_is(1, '<') && !next_is(1, '>') {
        // `<<`/`>>` shifts excluded; `<=`/`>=` are two tokens.
        return Some(if next_is(1, '=') { 2 } else { 1 });
    }
    if (t.is_punct('=') || t.is_punct('!')) && next_is(1, '=') {
        // `==` / `!=`; plain `=` (assignment) does not combine units.
        return Some(2);
    }
    None
}

/// The suffixed identifier adjacent to an operator: walking right, the
/// first token must be part of an `ident`/`self`/`.` chain (possibly
/// parenthesised getter calls are skipped as unknown); walking left,
/// the chain's *last* ident is the field that carries the suffix.
/// Returns `(name, unit, group)` only when the adjacent operand is a
/// suffixed identifier.
fn operand(code: &[&Token], op_idx: usize, forward: bool) -> Option<(String, &'static str, &'static str)> {
    let ident = if forward {
        // Right operand: skip leading `self`/`&`, follow the `a.b.c`
        // chain to its last ident, stop before a call `(`.
        let mut j = op_idx;
        let mut last: Option<usize> = None;
        while let Some(t) = code.get(j) {
            if t.kind == TokenKind::Ident && !t.is_ident("self") {
                last = Some(j);
                if !code.get(j + 1).is_some_and(|n| n.is_punct('.')) {
                    break;
                }
                j += 2;
            } else if t.is_ident("self") || t.is_punct('&') {
                j += 1;
            } else {
                break;
            }
        }
        let last = last?;
        if code.get(last + 1).is_some_and(|n| n.is_punct('(')) {
            return None; // method call result: unknown unit
        }
        code[last]
    } else {
        // Left operand: the token immediately before the operator must
        // be the chain's final ident (a `)` or literal is unknown).
        let t = *code.get(op_idx.checked_sub(1)?)?;
        if t.kind != TokenKind::Ident || t.is_ident("self") {
            return None;
        }
        t
    };
    let (unit, group) = suffix_of(&ident.text)?;
    Some((ident.text.clone(), unit, group))
}

/// Splits a `name_us`-style suffix into `(unit, group)`.
fn suffix_of(name: &str) -> Option<(&'static str, &'static str)> {
    let (stem, suffix) = name.rsplit_once('_')?;
    if stem.is_empty() {
        return None;
    }
    for (group, units) in GROUPS {
        if let Some(u) = units.iter().copied().find(|u| *u == suffix) {
            return Some((u, group));
        }
    }
    None
}
