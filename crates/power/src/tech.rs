//! Technology nodes and ITRS-style scaling parameters.
//!
//! The paper evaluates its scheme at the 16 nm node and motivates it with
//! the dark-silicon trend across generations. We model four generations at
//! **fixed die area and fixed TDP**: each shrink roughly doubles the core
//! count, scales capacitance by ~0.7× and voltage by ~0.9×, and increases
//! the leakage share — the classic post-Dennard recipe under which total
//! chip power at full tilt outgrows the TDP.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A CMOS technology generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TechNode {
    /// 45 nm (baseline generation).
    N45,
    /// 32 nm.
    N32,
    /// 22 nm.
    N22,
    /// 16 nm (the paper's headline node).
    N16,
}

/// Full parameter set of one technology generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechParams {
    /// The node these parameters describe.
    pub node: TechNode,
    /// Feature size in nanometres (for display).
    pub feature_nm: u32,
    /// Mesh edge length at the reference die area (mesh is `edge × edge`).
    pub mesh_edge: u16,
    /// Nominal supply voltage, volts.
    pub v_nominal: f64,
    /// Minimum (near-threshold) supply voltage, volts.
    pub v_min: f64,
    /// Threshold voltage, volts (alpha-power-law delay model input).
    pub v_threshold: f64,
    /// Maximum core clock at nominal voltage, hertz.
    pub f_max: f64,
    /// Effective switched capacitance of one core, farads.
    pub c_eff: f64,
    /// Leakage current of one powered-on core at nominal voltage, amperes.
    pub i_leak: f64,
    /// Chip thermal design power, watts (held constant across nodes).
    pub tdp: f64,
}

impl TechNode {
    /// All modelled nodes, oldest first.
    pub const ALL: [TechNode; 4] = [TechNode::N45, TechNode::N32, TechNode::N22, TechNode::N16];

    /// Feature size in nanometres.
    pub const fn feature_nm(self) -> u32 {
        match self {
            TechNode::N45 => 45,
            TechNode::N32 => 32,
            TechNode::N22 => 22,
            TechNode::N16 => 16,
        }
    }

    /// The parameter set for this node.
    ///
    /// Values follow the usual ITRS-flavoured scaling story at fixed die
    /// area and fixed 80 W TDP:
    ///
    /// | node | cores | V_dd | f_max | C_eff | I_leak |
    /// |------|-------|------|-------|-------|--------|
    /// | 45 nm | 6×6 = 36  | 1.10 V | 2.0 GHz | 1.00 nF | 0.10 A |
    /// | 32 nm | 8×8 = 64  | 1.00 V | 2.2 GHz | 0.70 nF | 0.14 A |
    /// | 22 nm | 12×12 = 144 | 0.90 V | 2.4 GHz | 0.49 nF | 0.19 A |
    /// | 16 nm | 16×16 = 256 | 0.80 V | 2.6 GHz | 0.34 nF | 0.25 A |
    pub fn params(self) -> TechParams {
        match self {
            TechNode::N45 => TechParams {
                node: self,
                feature_nm: 45,
                mesh_edge: 6,
                v_nominal: 1.10,
                v_min: 0.60,
                v_threshold: 0.32,
                f_max: 2.0e9,
                c_eff: 1.00e-9,
                i_leak: 0.10,
                tdp: 80.0,
            },
            TechNode::N32 => TechParams {
                node: self,
                feature_nm: 32,
                mesh_edge: 8,
                v_nominal: 1.00,
                v_min: 0.55,
                v_threshold: 0.30,
                f_max: 2.2e9,
                c_eff: 0.70e-9,
                i_leak: 0.14,
                tdp: 80.0,
            },
            TechNode::N22 => TechParams {
                node: self,
                feature_nm: 22,
                mesh_edge: 12,
                v_nominal: 0.90,
                v_min: 0.50,
                v_threshold: 0.28,
                f_max: 2.4e9,
                c_eff: 0.49e-9,
                i_leak: 0.19,
                tdp: 80.0,
            },
            TechNode::N16 => TechParams {
                node: self,
                feature_nm: 16,
                mesh_edge: 16,
                v_nominal: 0.80,
                v_min: 0.45,
                v_threshold: 0.26,
                f_max: 2.6e9,
                c_eff: 0.34e-9,
                i_leak: 0.25,
                tdp: 80.0,
            },
        }
    }

    /// Number of cores at the reference die area (`mesh_edge²`).
    pub fn core_count(self) -> usize {
        let e = self.params().mesh_edge as usize;
        e * e
    }

    /// Peak chip power if *every* core ran at nominal V/f with activity 1,
    /// watts. Exceeds the TDP on scaled nodes — that excess *is* dark
    /// silicon.
    pub fn peak_power_all_cores(self) -> f64 {
        let p = self.params();
        let per_core = p.c_eff * p.v_nominal * p.v_nominal * p.f_max + p.v_nominal * p.i_leak;
        per_core * self.core_count() as f64
    }

    /// Fraction of cores that **cannot** run at nominal V/f under the TDP
    /// (the dark-silicon fraction), in `[0, 1)`.
    pub fn dark_silicon_fraction(self) -> f64 {
        let p = self.params();
        let peak = self.peak_power_all_cores();
        if peak <= p.tdp {
            0.0
        } else {
            1.0 - p.tdp / peak
        }
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.feature_nm())
    }
}

/// Error returned when parsing a [`TechNode`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTechNodeError(String);

impl fmt::Display for ParseTechNodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown technology node `{}` (expected 45/32/22/16[nm])", self.0)
    }
}

impl std::error::Error for ParseTechNodeError {}

impl FromStr for TechNode {
    type Err = ParseTechNodeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().trim_end_matches("nm") {
            "45" => Ok(TechNode::N45),
            "32" => Ok(TechNode::N32),
            "22" => Ok(TechNode::N22),
            "16" => Ok(TechNode::N16),
            other => Err(ParseTechNodeError(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_count_grows_with_scaling() {
        let counts: Vec<usize> = TechNode::ALL.iter().map(|n| n.core_count()).collect();
        assert_eq!(counts, vec![36, 64, 144, 256]);
        assert!(counts.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn voltage_and_capacitance_shrink() {
        let params: Vec<TechParams> = TechNode::ALL.iter().map(|n| n.params()).collect();
        assert!(params.windows(2).all(|w| w[1].v_nominal < w[0].v_nominal));
        assert!(params.windows(2).all(|w| w[1].c_eff < w[0].c_eff));
        assert!(params.windows(2).all(|w| w[1].f_max > w[0].f_max));
        assert!(params.windows(2).all(|w| w[1].i_leak > w[0].i_leak));
    }

    #[test]
    fn tdp_is_constant_across_nodes() {
        let tdps: Vec<f64> = TechNode::ALL.iter().map(|n| n.params().tdp).collect();
        assert!(tdps.iter().all(|&t| t == tdps[0]));
    }

    #[test]
    fn dark_silicon_fraction_grows_monotonically() {
        let fracs: Vec<f64> = TechNode::ALL
            .iter()
            .map(|n| n.dark_silicon_fraction())
            .collect();
        assert!(
            fracs.windows(2).all(|w| w[1] > w[0]),
            "dark fraction must grow: {fracs:?}"
        );
        assert!(fracs[3] > 0.4, "16nm should be majority-constrained: {}", fracs[3]);
        assert!(fracs[0] < 0.25, "45nm should be mostly lit: {}", fracs[0]);
    }

    #[test]
    fn fraction_is_well_formed() {
        for node in TechNode::ALL {
            let f = node.dark_silicon_fraction();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn voltage_ordering_within_node() {
        for node in TechNode::ALL {
            let p = node.params();
            assert!(p.v_threshold < p.v_min);
            assert!(p.v_min < p.v_nominal);
        }
    }

    #[test]
    fn parse_roundtrip() {
        for node in TechNode::ALL {
            let s = node.to_string();
            assert_eq!(s.parse::<TechNode>().unwrap(), node);
        }
        assert_eq!("22".parse::<TechNode>().unwrap(), TechNode::N22);
        assert!("7nm".parse::<TechNode>().is_err());
        let err = "7nm".parse::<TechNode>().unwrap_err();
        assert!(err.to_string().contains("unknown technology node"));
    }

    #[test]
    fn display_format() {
        assert_eq!(TechNode::N16.to_string(), "16nm");
        assert_eq!(TechNode::N45.to_string(), "45nm");
    }

    #[test]
    fn peak_power_exceeds_tdp_on_scaled_nodes() {
        for node in [TechNode::N22, TechNode::N16] {
            assert!(node.peak_power_all_cores() > node.params().tdp);
        }
    }
}
