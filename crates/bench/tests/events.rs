//! End-to-end guarantees of the decision-telemetry pipeline: the JSONL
//! dumps are byte-identical for any worker count, the per-kind counts
//! reconcile exactly with the report aggregates, and `explain` renders a
//! usable timeline.

use manytest_bench::events::{capture_events, explain, run_probe, write_event_logs};
use manytest_bench::Scale;
use manytest_core::prelude::*;

/// Same seeds, different worker counts → byte-identical telemetry. This
/// is the observability extension of the suite's determinism contract:
/// parallelism must not reorder, drop or reformat a single event.
#[test]
fn event_logs_are_byte_identical_across_worker_counts() {
    let ids = ["e3", "e5", "e11"];
    let dir = std::env::temp_dir().join(format!("manytest-events-{}", std::process::id()));
    let serial_dir = dir.join("serial");
    let parallel_dir = dir.join("parallel");
    write_event_logs(&serial_dir, &ids, Scale::Quick, 1).expect("serial dump");
    write_event_logs(&parallel_dir, &ids, Scale::Quick, 4).expect("parallel dump");
    for id in ids {
        let serial = std::fs::read(serial_dir.join(format!("{id}.jsonl"))).expect("serial file");
        let parallel =
            std::fs::read(parallel_dir.join(format!("{id}.jsonl"))).expect("parallel file");
        assert!(!serial.is_empty(), "probe {id} produced no events");
        assert_eq!(
            serial, parallel,
            "probe {id}: JSONL differs between jobs=1 and jobs=4"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every probe's event counts must reconcile with its report, and the
/// JSONL text must round-trip to the same per-kind counts the in-memory
/// log carries.
#[test]
fn event_counts_reconcile_with_reports_and_jsonl() {
    for (id, report) in capture_events(&["e3", "e9", "e11"], Scale::Quick, 2) {
        validate_events(&report).unwrap_or_else(|e| panic!("probe {id}: {e}"));
        assert_eq!(report.events.dropped(), 0, "probe {id} overflowed its log");
        // The lifecycle invariant the scheduler lives by, stated directly.
        assert_eq!(
            report.events.count("TestLaunched"),
            report.tests_completed + report.tests_aborted + report.tests_in_flight,
            "probe {id}: launch accounting"
        );
        let text = report.events.to_jsonl();
        let parsed = jsonl_kind_counts(&text);
        for (kind, count) in report.events.kind_counts() {
            assert_eq!(
                parsed.get(kind).copied().unwrap_or(0),
                count,
                "probe {id}: JSONL disagrees with the log for kind {kind}"
            );
        }
        let total: u64 = parsed.values().sum();
        assert_eq!(total, report.events.total(), "probe {id}: total events");
    }
}

/// The probe run itself must match an identically-configured direct run:
/// capture is an observer, never an actor.
#[test]
fn probes_do_not_perturb_the_simulation() {
    let a = run_probe("e3", Scale::Quick).expect("known id");
    let b = run_probe("e3", Scale::Quick).expect("known id");
    assert_eq!(a, b, "probe runs must be reproducible");
}

#[test]
fn explain_renders_a_decision_timeline() {
    let text = explain("e3", Scale::Quick).expect("known id");
    assert!(text.contains("decision timeline"), "missing header:\n{text}");
    assert!(text.contains("headroom"), "missing power headroom:\n{text}");
    assert!(text.contains("queue_wait_ms"), "missing queue-wait histogram:\n{text}");
    assert!(text.contains("test_interval_ms"), "missing interval histogram:\n{text}");
    assert!(text.contains("power cap:"), "missing cap summary:\n{text}");
    assert!(
        text.contains("TestLaunched = "),
        "missing counter block:\n{text}"
    );
}

/// The fault-response probe must engage the whole detect→respond loop
/// and `explain` must render its graceful-degradation summary.
#[test]
fn explain_e11_renders_the_degradation_block() {
    let text = explain("e11", Scale::Quick).expect("known id");
    assert!(text.contains("degradation:"), "missing degradation block:\n{text}");
    assert!(text.contains("healthy cores:"), "missing capacity line:\n{text}");
    assert!(text.contains("confirmation retests"), "missing retest count:\n{text}");
    assert!(text.contains("victim apps:"), "missing victim line:\n{text}");
    assert!(text.contains("corruption exposure:"), "missing exposure line:\n{text}");
}
