impl System {
    pub fn control(&mut self) {
        self.probe_lane();
    }

    fn probe_lane(&mut self) {
        self.launch_probe();
    }

    fn launch_probe(&mut self) {
        stage_buffer(8);
    }
}

fn stage_buffer(n: usize) -> Vec<u32> {
    vec![0; n]
}
