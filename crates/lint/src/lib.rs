//! `manytest-lint` — workspace determinism & panic-safety static
//! analyzer.
//!
//! Everything the reproduction claims rests on bit-level deterministic
//! replay; this crate enforces the source-level half of that property
//! *before* a nondeterminism bug can corrupt a golden file. It is an
//! offline, dependency-free analyzer: a lightweight Rust lexer
//! ([`lexer`]), a [`rules::Rule`] registry, per-finding diagnostics
//! (`file:line:col`), and audited inline suppressions
//! (`// lint:allow(<rule>, reason = "…")` — an allow that silences
//! nothing is itself an error).
//!
//! Run it with:
//!
//! ```sh
//! cargo run -p manytest-lint -- --workspace          # human output
//! cargo run -p manytest-lint -- --workspace --json   # CI artifact
//! ```
//!
//! See the README's "Static analysis" section for the rule table.

pub mod allow;
pub mod cache;
pub mod callgraph;
pub mod diag;
pub mod effects;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod source;
pub mod symbols;

use diag::Finding;
use rules::is_known_rule;
use source::{SourceFile, Workspace};
use std::path::Path;

/// The outcome of a lint run.
pub struct LintReport {
    /// Surviving findings, sorted by `(file, line, col, rule)`.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lints the workspace rooted at `root` (file rules, workspace rules,
/// allow audit).
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let ws = Workspace::load(root)?;
    Ok(run(&ws))
}

/// Lints individual files (no workspace rules — cross-file facts need
/// the full tree).
pub fn lint_files(files: Vec<SourceFile>) -> LintReport {
    let ws = Workspace::from_sources(Path::new("/nonexistent"), files);
    run_inner(&ws, false)
}

/// Review-scoped lint (`--changed REF`): loads the whole workspace
/// (cross-file rules need the full tree to resolve calls and audits)
/// but only *reports* findings — and allow-audit complaints — for the
/// `changed` workspace-relative paths.
pub fn lint_workspace_changed(root: &Path, changed: &[String]) -> std::io::Result<LintReport> {
    let ws = Workspace::load(root)?;
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for file in &ws.files {
        if changed.iter().any(|p| p == &file.rel_path) {
            scanned += 1;
            findings.extend(run_file_rules(file));
        }
    }
    findings.extend(
        run_workspace_rules(&ws)
            .into_iter()
            .filter(|f| changed.iter().any(|p| p == &f.file)),
    );
    let findings = audit_allows(&ws, findings, Some(changed));
    Ok(LintReport {
        findings,
        files_scanned: scanned,
    })
}

/// Runs every registered rule plus the allow audit over a loaded
/// workspace.
pub fn run(ws: &Workspace) -> LintReport {
    run_inner(ws, true)
}

fn run_inner(ws: &Workspace, workspace_rules: bool) -> LintReport {
    let mut findings = Vec::new();
    for file in &ws.files {
        findings.extend(run_file_rules(file));
    }
    if workspace_rules {
        findings.extend(run_workspace_rules(ws));
    }
    let findings = audit_allows(ws, findings, None);
    LintReport {
        findings,
        files_scanned: ws.files.len(),
    }
}

/// The per-file pass: every file rule plus the `malformed-effect` meta
/// audit. Pure in the file's content — the incremental cache
/// ([`cache`]) keys its result on the file's content hash.
pub fn run_file_rules(file: &SourceFile) -> Vec<Finding> {
    let registry = rules::registry();
    let mut findings = Vec::new();
    for rule in &registry {
        rule.check_file(file, &mut findings);
    }
    let (fns, _) = symbols::extract_file(file, 0);
    for note in effects::notes_in(file, 0, &fns) {
        if let Some(why) = &note.malformed {
            findings.push(Finding {
                rule: "malformed-effect",
                file: file.rel_path.clone(),
                line: note.line,
                col: note.col,
                message: format!("unparseable lint:effect: {why}"),
                rationale: EFFECT_RATIONALE,
            });
        }
    }
    findings
}

/// The cross-file pass (call-graph rules, golden/doc coherence). Keyed
/// by the hash of *all* workspace inputs in the cache.
pub fn run_workspace_rules(ws: &Workspace) -> Vec<Finding> {
    let registry = rules::registry();
    let mut findings = Vec::new();
    for rule in &registry {
        rule.check_workspace(ws, &mut findings);
    }
    findings
}

/// Applies `lint:allow` suppressions, then reports the allows that are
/// malformed, name an unknown rule, or silenced nothing. When `scope`
/// is `Some`, allow-audit findings are only reported for files in the
/// scope (suppression still considers every file) — `--changed` mode
/// must not blame unchanged files for allows it did not re-evaluate.
pub(crate) fn audit_allows(
    ws: &Workspace,
    findings: Vec<Finding>,
    scope: Option<&[String]>,
) -> Vec<Finding> {
    // (file index, allow index) → times used.
    let mut used: Vec<Vec<u32>> = ws
        .files
        .iter()
        .map(|f| vec![0u32; f.allows.len()])
        .collect();
    let mut kept: Vec<Finding> = Vec::new();
    'findings: for finding in findings {
        if let Some(fi) = ws.files.iter().position(|f| f.rel_path == finding.file) {
            for (ai, allow) in ws.files[fi].allows.iter().enumerate() {
                if allow.malformed.is_none()
                    && allow.rule == finding.rule
                    && allow.target_line == finding.line
                {
                    used[fi][ai] += 1;
                    continue 'findings;
                }
            }
        }
        kept.push(finding);
    }
    for (fi, file) in ws.files.iter().enumerate() {
        if scope.is_some_and(|s| !s.iter().any(|p| p == &file.rel_path)) {
            continue;
        }
        for (ai, allow) in file.allows.iter().enumerate() {
            if let Some(why) = &allow.malformed {
                kept.push(Finding {
                    rule: "malformed-allow",
                    file: file.rel_path.clone(),
                    line: allow.line,
                    col: allow.col,
                    message: format!("unparseable lint:allow: {why}"),
                    rationale: ALLOW_RATIONALE,
                });
            } else if !is_known_rule(&allow.rule) {
                kept.push(Finding {
                    rule: "malformed-allow",
                    file: file.rel_path.clone(),
                    line: allow.line,
                    col: allow.col,
                    message: format!("lint:allow names unknown rule `{}`", allow.rule),
                    rationale: ALLOW_RATIONALE,
                });
            } else if used[fi][ai] == 0 {
                kept.push(Finding {
                    rule: "unused-allow",
                    file: file.rel_path.clone(),
                    line: allow.line,
                    col: allow.col,
                    message: format!(
                        "lint:allow({}) suppresses nothing on line {}",
                        allow.rule, allow.target_line
                    ),
                    rationale: "stale allows hide future regressions; delete the comment or \
                                move it next to the violation it justifies",
                });
            }
        }
    }
    kept.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    kept
}

const ALLOW_RATIONALE: &str =
    "the allow syntax is lint:allow(<rule>, reason = \"…\") — the reason is mandatory \
     because suppressions are audited in review";

const EFFECT_RATIONALE: &str =
    "the effect syntax is lint:effect(none|warmup|alloc|lock|io|panic[+…], reason = \"…\") \
     on the line above (or trailing) the fn it describes — the declared set replaces \
     inference for that fn, so the spec and reason are audited in review";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_suppresses_matching_finding_and_is_counted_used() {
        let src = "use std::collections::HashMap; // lint:allow(nondet-collections, reason = \"doc example\")\n";
        let report = lint_files(vec![SourceFile::from_source("crates/core/src/x.rs", src)]);
        assert!(report.is_clean(), "findings: {:?}", report.findings);
    }

    #[test]
    fn unused_allow_is_reported() {
        let src = "// lint:allow(nondet-collections, reason = \"nothing here\")\nfn f() {}\n";
        let report = lint_files(vec![SourceFile::from_source("crates/core/src/x.rs", src)]);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "unused-allow");
    }

    #[test]
    fn unknown_rule_in_allow_is_malformed() {
        let src = "// lint:allow(no-such-rule, reason = \"hm\")\nfn f() {}\n";
        let report = lint_files(vec![SourceFile::from_source("crates/core/src/x.rs", src)]);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "malformed-allow");
    }

    #[test]
    fn findings_are_sorted_and_spanned() {
        let src = "use std::collections::{HashMap, HashSet};\n";
        let report = lint_files(vec![SourceFile::from_source("crates/sim/src/x.rs", src)]);
        assert_eq!(report.findings.len(), 2);
        assert!(report.findings[0].col < report.findings[1].col);
        assert_eq!(report.findings[0].line, 1);
    }
}
