//! Device stress/aging model and the test-criticality metric.
//!
//! The journal extension of the reproduced paper states that "a test
//! criticality metric, based on a device aging model, is used to select
//! cores to be tested at a time" and that the approach "adapts to the
//! current stress level of the cores by using the utilization metric". This
//! crate provides that chain:
//!
//! * [`model`] — an Arrhenius-style [`AgingModel`]: per-core power feeds a
//!   steady-state thermal proxy (`T = T_amb + R_th · P`), temperature feeds
//!   an Arrhenius acceleration factor, and the factor scales a base wear
//!   rate. Hot, busy, high-voltage cores age faster — which is exactly the
//!   signal the test scheduler needs.
//! * [`stress`] — [`StressTracker`]: per-core accumulated damage, damage
//!   since the last completed test, exponentially averaged utilisation and
//!   time-of-last-test bookkeeping.
//! * [`thermal`] — an optional transient RC thermal grid
//!   ([`ThermalGrid`]): per-tile capacitance and lateral spreading for
//!   runs where heating dynamics matter (the steady-state proxy remains
//!   the default).
//! * [`criticality`] — [`CriticalityModel`]: combines accumulated stress
//!   since the last test with elapsed time against a target test period
//!   into one scalar priority; the scheduler tests the most critical idle
//!   core first, and the test-aware mapper *avoids* occupying it.
//!
//! # Examples
//!
//! ```
//! use manytest_aging::prelude::*;
//!
//! let aging = AgingModel::default();
//! // A hot core (2 W) wears faster than a cool one (0.2 W).
//! assert!(aging.wear_rate(2.0) > aging.wear_rate(0.2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod criticality;
pub mod model;
pub mod stress;
pub mod thermal;

pub use criticality::CriticalityModel;
pub use model::{AgingModel, RecoveryParams};
pub use stress::{CoreStress, StressTracker};
pub use thermal::{ThermalGrid, ThermalParams};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::criticality::CriticalityModel;
    pub use crate::model::{AgingModel, RecoveryParams};
    pub use crate::stress::{CoreStress, StressTracker};
    pub use crate::thermal::{ThermalGrid, ThermalParams};
}
