//! `event-match-exhaustiveness`: a `match` that destructures
//! `SimEvent` / `CauseKind` / `CoreHealth` in one of the telemetry
//! consumer files must not hide behind a `_` wildcard arm.
//!
//! The double-entry telemetry discipline only catches a dropped event
//! kind if adding a `SimEvent` variant *fails to compile* (or lint)
//! every consumer that aggregates, traces, diffs or renders events. A
//! `_ => {}` arm silently swallows new variants — reports stay green
//! while a whole event class vanishes from the audit. Matches that
//! deliberately sample a subset (e.g. "session outcomes only") carry a
//! `// lint:allow(event-match-exhaustiveness, reason = "…")` naming
//! the subset contract.
//!
//! Detection is type-free: a `match` body counts as guarded when any
//! arm references `<Enum>::` for a guarded enum; the wildcard is the
//! exact arm pattern `_ =>` at the match body's top nesting level.

use super::Rule;
use crate::diag::Finding;
use crate::lexer::Token;
use crate::source::SourceFile;
use crate::symbols::brace_match;

pub struct EventMatchExhaustiveness;

/// Enums whose consumers must stay exhaustive.
const GUARDED_ENUMS: [&str; 3] = ["SimEvent", "CauseKind", "CoreHealth"];

/// Telemetry consumer files (matched by basename — audit, trace, diff,
/// report and event rendering live in different crates).
const GUARDED_BASENAMES: [&str; 5] = ["audit.rs", "trace.rs", "diff.rs", "report.rs", "events.rs"];

impl Rule for EventMatchExhaustiveness {
    fn id(&self) -> &'static str {
        "event-match-exhaustiveness"
    }

    fn description(&self) -> &'static str {
        "matches on SimEvent/CauseKind/CoreHealth in telemetry consumers must not use an \
         unaudited `_` arm"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let base = file.rel_path.rsplit('/').next().unwrap_or_default();
        if !GUARDED_BASENAMES.contains(&base) || file.is_test_file() {
            return;
        }
        let code: Vec<&Token> = file.code_tokens().collect();
        for (i, tok) in code.iter().enumerate() {
            if !tok.is_ident("match") || file.is_test_line(tok.line) {
                continue;
            }
            // The match body: first `{` after the scrutinee expression.
            // Struct literals cannot appear unparenthesised there, so
            // the first top-level `{` is the body.
            let Some(open) = body_open(&code, i) else { continue };
            let Some(close) = brace_match(&code, open) else { continue };
            let Some(enum_name) = guarded_enum_in(&code[open..=close]) else {
                continue;
            };
            // Wildcard arms: the token sequence `_ => ` at depth 1
            // relative to the body brace.
            let mut depth = 0i32;
            for j in open..=close {
                let t = code[j];
                if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if depth == 1
                    && t.is_ident("_")
                    && code.get(j + 1).is_some_and(|a| a.is_punct('='))
                    && code.get(j + 2).is_some_and(|a| a.is_punct('>'))
                    && !file.is_test_line(t.line)
                {
                    out.push(Finding {
                        rule: self.id(),
                        file: file.rel_path.clone(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "`_` arm in a match over {enum_name} — new variants would be \
                             silently dropped from this consumer"
                        ),
                        rationale: "telemetry consumers are double-entry: every SimEvent/\
                                    CauseKind/CoreHealth variant must be handled (or the \
                                    subset contract audited with lint:allow) so adding a \
                                    variant fails the lint instead of vanishing from reports",
                    });
                }
            }
        }
    }
}

/// Index of the match body's `{`: the first `{` at zero bracket depth
/// after the `match` keyword.
fn body_open(code: &[&Token], match_idx: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in code.iter().enumerate().skip(match_idx + 1) {
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('{') {
            return Some(j);
        } else if depth == 0 && t.is_punct(';') {
            return None; // gave up: no body on this statement
        }
    }
    None
}

/// The first guarded enum referenced as `<Enum>::` inside the body.
fn guarded_enum_in(body: &[&Token]) -> Option<&'static str> {
    for (j, t) in body.iter().enumerate() {
        if let Some(name) = GUARDED_ENUMS.iter().find(|e| t.is_ident(e)) {
            if body.get(j + 1).is_some_and(|a| a.is_punct(':'))
                && body.get(j + 2).is_some_and(|a| a.is_punct(':'))
            {
                return Some(name);
            }
        }
    }
    None
}
