//! Property check for the struct-of-arrays store: the incrementally
//! maintained derived views (mappable count, testing count, testable
//! bitset) must equal a from-scratch rebuild after *any* mutation
//! sequence. Sequences are driven by [`SimRng`] so failures replay
//! exactly from the printed seed.

use manytest_core::exec::CoreMode;
use manytest_core::store::CoreStore;
use manytest_power::{PowerBudget, VfLadder, VfLevel, TechNode};
use manytest_sbst::{RoutineId, TestSession};
use manytest_sim::SimRng;
use manytest_workload::{AppId, TaskId};

fn random_mutation(store: &mut CoreStore, rng: &mut SimRng, budget: &mut PowerBudget) {
    let n = store.len();
    let core = rng.gen_range(n as u64) as usize;
    let op = VfLadder::for_node(TechNode::N16, 5).max();
    match rng.gen_range(8) {
        0 => store.set_mode(core, CoreMode::Off),
        1 => store.set_mode(core, CoreMode::Idle(op)),
        2 => store.set_mode(core, CoreMode::Busy(op)),
        3 => store.set_mode(core, CoreMode::Testing(op, 0.9)),
        4 => {
            let owner = if rng.gen_bool(0.5) {
                Some((AppId(rng.next_u64() as u32 as u64), TaskId(0)))
            } else {
                None
            };
            store.set_owner(core, owner);
        }
        5 => {
            if !store.has_session(core) {
                let session = TestSession::new(core, RoutineId(0), VfLevel(0), 100, 1.0e9, 0.0);
                let reservation = budget.reserve(0.001).expect("tiny reservations always fit");
                store.begin_session(core, session, reservation);
            }
        }
        6 => {
            let (_, reservation) = store.end_session(core);
            if let Some(r) = reservation {
                budget.release(r);
            }
        }
        _ => {
            if rng.gen_bool(0.2) {
                store.set_quarantined(core);
            } else {
                store.set_healthy(core, true);
            }
        }
    }
}

#[test]
fn incremental_views_match_full_rebuild_under_random_mutations() {
    for trial in 0..32u64 {
        let mut rng = SimRng::seed_from(0xC0DE_0000 + trial);
        // Mix of word-aligned and ragged-tail core counts.
        let n = [16, 63, 64, 65, 100, 256][(trial % 6) as usize];
        let mut store = CoreStore::new(n);
        let mut budget = PowerBudget::new(1.0e6);
        let epochs = 1 + rng.gen_range(8);
        for _ in 0..epochs {
            let mutations = rng.gen_range(4 * n as u64);
            for _ in 0..mutations {
                random_mutation(&mut store, &mut rng, &mut budget);
            }
            let rebuilt = store.rebuild_views();
            let maintained = store.current_views();
            assert_eq!(
                rebuilt, maintained,
                "trial {trial} (n = {n}): maintained views drifted from a \
                 from-scratch rebuild; replay with SimRng::seed_from({:#x})",
                0xC0DE_0000u64 + trial
            );
            assert!(store.views_consistent());
            // Every dirty core is listed at most once.
            let mut dirty: Vec<u32> = store.dirty_cores().to_vec();
            dirty.sort_unstable();
            let len = dirty.len();
            dirty.dedup();
            assert_eq!(len, dirty.len(), "trial {trial}: dirty list has duplicates");
            store.advance_generation();
            assert!(store.dirty_cores().is_empty());
        }
    }
}

#[test]
fn dirty_marks_count_exactly_the_distinct_cores_touched_per_epoch() {
    let mut store = CoreStore::new(32);
    let op = VfLadder::for_node(TechNode::N16, 5).max();
    // Touch three cores, one of them repeatedly: three marks.
    store.set_mode(3, CoreMode::Idle(op));
    store.set_mode(3, CoreMode::Busy(op));
    store.set_owner(7, Some((AppId(1), TaskId(0))));
    store.set_quarantined(19);
    assert_eq!(store.dirty_marks(), 3);
    assert_eq!(store.dirty_cores(), &[3, 7, 19]);
    store.advance_generation();
    // A new epoch re-counts the same core as one fresh mark.
    store.set_mode(3, CoreMode::Off);
    assert_eq!(store.dirty_marks(), 4);
    assert_eq!(store.dirty_cores(), &[3]);
}
