//! The integrated manycore system simulator — ties the NoC, power, aging,
//! workload, mapping and test-scheduling substrates into the platform the
//! DATE 2015 paper evaluates.
//!
//! # Model
//!
//! A [`System`] is a 2-D mesh manycore at one technology node. Time
//! advances in fixed *control epochs* (default 1 ms). At each epoch
//! boundary the control plane runs, in order:
//!
//! 1. **Power governor** — the PID controller (or a baseline policy)
//!    observes last epoch's measured power and moves the admission cap
//!    around the TDP.
//! 2. **Runtime mapper** — pending applications are admitted FIFO: a DVFS
//!    level is chosen (the highest whose projected power fits the cap),
//!    power is reserved, and the mapper places the task graph on free
//!    cores.
//! 3. **Test scheduler** — idle and dark cores are ranked by test
//!    criticality; SBST sessions launch while the remaining headroom
//!    lasts. Sessions are *non-intrusive*: the moment a core's task
//!    becomes ready, its session aborts.
//!
//! Between boundaries, task and session completions are resolved at exact
//! (nanosecond) times through the event queue; per-core energy, stress and
//! utilisation are integrated piecewise.
//!
//! # Examples
//!
//! ```
//! use manytest_core::prelude::*;
//!
//! let report = SystemBuilder::new(TechNode::N16)
//!     .seed(42)
//!     .arrival_rate(200.0)
//!     .sim_time_ms(200)
//!     .build()
//!     .expect("valid config")
//!     .run();
//! assert!(report.apps_completed > 0);
//! assert!(report.tests_completed > 0);
//! // The cap is honoured: measured power never exceeded the TDP band.
//! assert_eq!(report.cap_violations, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod config;
pub mod error;
pub mod exec;
pub mod metrics;
pub mod store;
pub mod system;

pub use audit::validate_events;
pub use config::{FaultResponsePolicy, GovernorKind, MapperKind, SystemConfig};
pub use error::BuildError;
pub use metrics::Report;
pub use system::{System, SystemBuilder};

/// Convenience re-exports for downstream crates and binaries.
pub mod prelude {
    pub use crate::audit::validate_events;
    pub use crate::config::{FaultResponsePolicy, GovernorKind, MapperKind, SystemConfig};
    pub use crate::error::BuildError;
    pub use crate::metrics::Report;
    pub use crate::system::{System, SystemBuilder};
    pub use manytest_power::TechNode;
    pub use manytest_sim::{
        jsonl_kind_counts, AbortReason, CauseKind, CauseLink, CounterRegistry, EventId, EventLog,
        EventRecord, JsonlWriter, NullObserver, Observer, ProvenanceGraph, SimEvent,
    };
}
