//! Engine-level integration tests: the incremental cache and the SARIF
//! artifact, exercised against on-disk synthetic workspaces.

use manytest_lint::cache::{lint_workspace_cached, CACHE_REL_PATH};
use manytest_lint::diag::render_json;
use manytest_lint::json;
use manytest_lint::sarif::render_sarif;
use std::path::{Path, PathBuf};

/// A throwaway on-disk workspace under the test target dir; seeded with
/// one violating and one clean file.
fn scratch_workspace(name: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    // Stale state from a previous run would defeat the cold-run half.
    std::fs::remove_dir_all(&root).ok();
    let src = root.join("crates/core/src");
    std::fs::create_dir_all(&src).expect("tmpdir");
    std::fs::write(
        src.join("bad.rs"),
        "use std::collections::HashMap;\npub type T = HashMap<u32, u32>;\n",
    )
    .expect("write");
    std::fs::write(src.join("good.rs"), "pub fn id(x: u32) -> u32 {\n    x\n}\n").expect("write");
    root
}

#[test]
fn warm_cache_replays_files_and_workspace() {
    let root = scratch_workspace("lint-cache-replay");
    let (cold, cold_stats) = lint_workspace_cached(&root).expect("cold run");
    assert_eq!(cold_stats.file_hits, 0);
    assert_eq!(cold_stats.file_misses, 2);
    assert!(!cold_stats.workspace_hit);
    assert!(root.join(CACHE_REL_PATH).is_file(), "cache file written");

    let (warm, warm_stats) = lint_workspace_cached(&root).expect("warm run");
    assert_eq!(warm_stats.file_hits, 2, "all files replayed");
    assert_eq!(warm_stats.file_misses, 0);
    assert!(warm_stats.workspace_hit, "workspace pass replayed");
    assert_eq!(cold.findings, warm.findings);
}

#[test]
fn editing_one_file_invalidates_only_that_file() {
    let root = scratch_workspace("lint-cache-invalidate");
    lint_workspace_cached(&root).expect("cold run");
    std::fs::write(
        root.join("crates/core/src/good.rs"),
        "pub fn id2(x: u32) -> u32 {\n    x\n}\n",
    )
    .expect("rewrite");
    let (_, stats) = lint_workspace_cached(&root).expect("after edit");
    assert_eq!(stats.file_hits, 1, "the untouched file replays");
    assert_eq!(stats.file_misses, 1, "the edited file re-runs");
    assert!(!stats.workspace_hit, "any content change re-runs the workspace pass");
}

#[test]
fn sarif_and_json_are_byte_identical_cold_vs_warm() {
    let root = scratch_workspace("lint-cache-bytes");
    let (cold, _) = lint_workspace_cached(&root).expect("cold run");
    let (warm, stats) = lint_workspace_cached(&root).expect("warm run");
    assert!(stats.workspace_hit && stats.file_misses == 0, "warm run must replay");
    // Replayed findings round-trip losslessly: both renderings match to
    // the byte, so CI artifacts never churn on cache state.
    assert_eq!(render_sarif(&cold.findings), render_sarif(&warm.findings));
    assert_eq!(
        render_json(&cold.findings, cold.files_scanned),
        render_json(&warm.findings, warm.files_scanned)
    );
}

#[test]
fn written_sarif_validates_against_the_2_1_0_shape() {
    let root = scratch_workspace("lint-sarif-shape");
    let (report, _) = lint_workspace_cached(&root).expect("run");
    assert!(!report.findings.is_empty(), "fixture must produce findings");
    let doc = json::parse(&render_sarif(&report.findings)).expect("SARIF is valid JSON");
    assert_eq!(
        doc.get("$schema").and_then(|v| v.as_str()),
        Some("https://json.schemastore.org/sarif-2.1.0.json")
    );
    assert_eq!(doc.get("version").and_then(|v| v.as_str()), Some("2.1.0"));
    let run = &doc.get("runs").and_then(|v| v.as_arr()).expect("runs array")[0];
    let driver = run
        .get("tool")
        .and_then(|t| t.get("driver"))
        .expect("tool.driver");
    assert_eq!(driver.get("name").and_then(|v| v.as_str()), Some("manytest-lint"));
    let rules = driver.get("rules").and_then(|v| v.as_arr()).expect("rules");
    assert!(!rules.is_empty());
    for result in run.get("results").and_then(|v| v.as_arr()).expect("results") {
        // Every result points at a declared rule and a real location.
        let idx = result
            .get("ruleIndex")
            .and_then(|v| v.as_num())
            .expect("ruleIndex") as usize;
        assert_eq!(
            rules[idx].get("id").and_then(|v| v.as_str()),
            result.get("ruleId").and_then(|v| v.as_str())
        );
        let region = result.get("locations").and_then(|v| v.as_arr()).expect("locations")[0]
            .get("physicalLocation")
            .and_then(|p| p.get("region"))
            .expect("region");
        assert!(region.get("startLine").and_then(|v| v.as_num()).unwrap_or(0.0) >= 1.0);
        assert!(region.get("startColumn").and_then(|v| v.as_num()).unwrap_or(0.0) >= 1.0);
    }
}
