pub fn elapsed_secs(now_ns: u64, start_ns: u64) -> f64 {
    // Comments naming Instant or SystemTime are not violations.
    (now_ns - start_ns) as f64 * 1e-9
}
