//! Whole-system conservation and consistency invariants, checked on real
//! runs across a grid of configurations.

use manytest_core::prelude::*;

fn run(node: TechNode, seed: u64, rate: f64, ms: u64, testing: bool) -> Report {
    SystemBuilder::new(node)
        .seed(seed)
        .arrival_rate(rate)
        .sim_time_ms(ms)
        .testing(testing)
        .build()
        .expect("valid config")
        .run()
}

#[test]
fn bookkeeping_is_conserved_across_configurations() {
    for (node, rate) in [
        (TechNode::N45, 500.0),
        (TechNode::N22, 1_500.0),
        (TechNode::N16, 3_000.0),
    ] {
        let r = run(node, 7, rate, 250, true);
        // Apps: everything that arrived is completed, in flight, or was
        // structurally rejected (which the standard mix never triggers).
        assert!(
            r.apps_completed + r.apps_in_flight <= r.apps_arrived,
            "{node}: app accounting leak"
        );
        // Tests: the per-core ledger sums to the completed count.
        let per_core_sum: u64 = r.tests_per_core.iter().sum();
        assert_eq!(per_core_sum, r.tests_completed, "{node}: per-core ledger");
        let per_level_sum: u64 = r.tests_per_level.iter().sum();
        assert_eq!(per_level_sum, r.tests_completed, "{node}: per-level ledger");
        // Energy: shares are proper fractions.
        assert!((0.0..=1.0).contains(&r.test_energy_share));
        assert!((0.0..=1.0).contains(&r.noc_energy_share));
        // Power: mean ≤ peak ≤ cap band.
        assert!(r.mean_power <= r.peak_power + 1e-9);
        assert!(r.peak_power <= r.tdp * 1.01 + 1e-9);
        // Throughput identity.
        let expected = r.instructions_executed as f64 / r.sim_seconds / 1e6;
        assert!((r.throughput_mips - expected).abs() < 1e-6);
    }
}

#[test]
fn trace_epoch_counts_match_horizon() {
    let r = run(TechNode::N32, 3, 800.0, 180, true);
    for name in [
        "power_w",
        "test_power_w",
        "workload_power_w",
        "cap_w",
        "tdp_w",
        "pending_apps",
        "active_tests",
        "mean_utilization",
    ] {
        let series = r
            .trace
            .series(name)
            .unwrap_or_else(|| panic!("missing trace series {name}"));
        assert_eq!(series.len(), 180, "series {name} has wrong epoch count");
    }
}

#[test]
fn damage_only_accumulates() {
    // Run twice with the same seed but different horizons: the longer run
    // must dominate per-core damage (wear never heals).
    let short = run(TechNode::N22, 9, 1_000.0, 100, true);
    let long = run(TechNode::N22, 9, 1_000.0, 300, true);
    for (s, l) in short.damage_per_core.iter().zip(&long.damage_per_core) {
        assert!(l >= s, "damage decreased between prefix runs");
    }
}

#[test]
fn testing_never_increases_app_latency_materially() {
    let with = run(TechNode::N16, 15, 1_000.0, 300, true);
    let without = run(TechNode::N16, 15, 1_000.0, 300, false);
    assert!(
        with.mean_app_latency <= without.mean_app_latency * 1.05,
        "non-intrusive testing stretched latency: {:.3} vs {:.3} ms",
        with.mean_app_latency * 1e3,
        without.mean_app_latency * 1e3
    );
}

#[test]
fn mean_test_interval_tracks_the_target_period() {
    // Default criticality: threshold crossed ~125 ms after a test at zero
    // stress; at light load the measured mean interval should sit within a
    // factor of two of that.
    let r = run(TechNode::N32, 4, 300.0, 800, true);
    assert!(
        (0.06..0.25).contains(&r.mean_test_interval),
        "mean interval {:.1} ms outside the plausible band",
        r.mean_test_interval * 1e3
    );
}

#[test]
fn heavier_load_means_more_power_until_saturation() {
    let mut last = 0.0;
    for rate in [200.0, 800.0, 2_400.0] {
        let r = run(TechNode::N16, 21, rate, 200, true);
        assert!(
            r.mean_power > last * 0.95,
            "power did not grow with load at {rate} apps/s"
        );
        last = r.mean_power;
    }
}

#[test]
fn queue_wait_is_zero_at_light_load_and_grows_at_saturation() {
    let light = run(TechNode::N16, 8, 200.0, 250, true);
    let heavy = run(TechNode::N16, 8, 8_000.0, 250, true);
    assert!(light.mean_queue_wait < 0.005, "light load should admit immediately");
    assert!(
        heavy.mean_queue_wait > light.mean_queue_wait,
        "saturation must produce queueing"
    );
}

#[test]
fn intrusive_mode_runs_and_reduces_aborts() {
    let non_intrusive = SystemBuilder::new(TechNode::N16)
        .seed(5)
        .arrival_rate(2_500.0)
        .sim_time_ms(250)
        .mapper(MapperKind::Baseline)
        .build()
        .unwrap()
        .run();
    let intrusive = SystemBuilder::new(TechNode::N16)
        .seed(5)
        .arrival_rate(2_500.0)
        .sim_time_ms(250)
        .mapper(MapperKind::Baseline)
        .intrusive_testing(true)
        .build()
        .unwrap()
        .run();
    assert!(
        intrusive.tests_aborted < non_intrusive.tests_aborted,
        "intrusive mode must preempt fewer sessions ({} vs {})",
        intrusive.tests_aborted,
        non_intrusive.tests_aborted
    );
    assert!(intrusive.apps_completed > 0);
}
