//! Regenerates every figure/table of the (reconstructed) evaluation.
//!
//! ```sh
//! cargo run -p manytest-bench --bin repro --release          # everything
//! cargo run -p manytest-bench --bin repro --release -- e1 e5 # a subset (e1..e10, a1..a6)
//! cargo run -p manytest-bench --bin repro --release -- --quick
//! ```

use manytest_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let all = wanted.is_empty();
    let want = |id: &str| all || wanted.contains(&id);

    println!("# manytest reproduction — DATE 2015 power-aware online testing");
    println!(
        "# scale: {:?} (pass --quick for short runs; select with ids e1..e10 and a1..a6)\n",
        scale
    );

    if want("e1") {
        print_e1(&e1_tech_sweep(scale));
    }
    if want("e2") {
        print_e2(&e2_power_trace(scale));
    }
    if want("e3") {
        print_e3(&e3_test_power_share(scale));
    }
    if want("e4") {
        print_e4(&e4_test_interval_vs_load(scale));
    }
    if want("e5") {
        print_e5(&e5_mapping_compare(scale));
    }
    if want("e6") {
        print_e6(&e6_criticality_adaptation(scale));
    }
    if want("e7") {
        print_e7(&e7_vf_coverage(scale));
    }
    if want("e8") {
        print_e8(&e8_pid_vs_naive(scale));
    }
    if want("e9") {
        print_e9(&e9_dark_silicon(scale));
    }
    if want("e10") {
        print_e10(&e10_lifetime(scale));
    }
    if want("a1") {
        print_a1(&a1_intrusiveness(scale));
    }
    if want("a2") {
        print_a2(&a2_criticality_weights(scale));
    }
    if want("a3") {
        print_a3(&a3_abort_overhead(scale));
    }
    if want("a4") {
        print_a4(&a4_level_rotation(scale));
    }
    if want("a5") {
        print_a5(&a5_thermal_model(scale));
    }
    if want("a6") {
        print_a6(&a6_contention(scale));
    }
}
