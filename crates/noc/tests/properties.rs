//! Property tests of the NoC model.

use manytest_noc::prelude::*;
use proptest::prelude::*;

fn arb_mesh() -> impl Strategy<Value = Mesh2D> {
    (1u16..16, 1u16..16).prop_map(|(w, h)| Mesh2D::new(w, h))
}

proptest! {
    #[test]
    fn traffic_total_equals_bits_times_hops(
        mesh in arb_mesh(),
        messages in prop::collection::vec((0u32..256, 0u32..256, 1.0f64..1e6), 1..50),
    ) {
        let mut tm = TrafficMatrix::new(mesh);
        let mut manual = 0.0;
        for &(s, d, bits) in &messages {
            let src = mesh.coord(NodeId(s % mesh.node_count() as u32));
            let dst = mesh.coord(NodeId(d % mesh.node_count() as u32));
            tm.charge_route(src, dst, bits);
            manual += bits * src.manhattan(dst) as f64;
        }
        prop_assert!((tm.total_bits() - manual).abs() < 1e-6 * (1.0 + manual));
        prop_assert_eq!(tm.messages(), messages.len() as u64);
        prop_assert!(tm.max_link_bits() <= tm.total_bits() + 1e-9);
    }

    #[test]
    fn message_cost_is_monotone_in_bits_and_distance(
        mesh in arb_mesh(),
        a in 0u32..256, b in 0u32..256,
        bits in 1.0f64..1e9,
    ) {
        let model = LinkEnergyModel::nominal_16nm();
        let src = mesh.coord(NodeId(a % mesh.node_count() as u32));
        let dst = mesh.coord(NodeId(b % mesh.node_count() as u32));
        let one = model.message_cost(src, dst, bits);
        let double = model.message_cost(src, dst, 2.0 * bits);
        prop_assert!(double.energy >= one.energy);
        prop_assert!(one.energy > 0.0);
        prop_assert!(one.latency >= 0.0);
        prop_assert_eq!(one.hops, src.manhattan(dst));
    }

    #[test]
    fn region_choice_minimizes_radius(
        mesh in arb_mesh(),
        required in 1usize..10,
    ) {
        // Fully free mesh: the chosen radius must be the smallest square
        // that can hold `required` nodes anywhere on the mesh.
        let search = RegionSearch::new(mesh);
        match search.find(required, |_| true, |_| 0.0) {
            Some(choice) => {
                // The radius is minimal: no radius-(r-1) region anywhere on
                // the mesh could hold the request.
                if choice.region.radius > 0 {
                    let r1 = choice.region.radius - 1;
                    let some_smaller_fits = mesh
                        .coords()
                        .any(|c| Region::new(c, r1).len(mesh) >= required);
                    prop_assert!(!some_smaller_fits, "radius not minimal");
                }
                prop_assert!(choice.available >= required);
            }
            None => prop_assert!(mesh.node_count() < required),
        }
    }

    #[test]
    fn node_ids_are_dense_and_unique(mesh in arb_mesh()) {
        let ids: Vec<usize> = mesh.coords().map(|c| mesh.node_id(c).index()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), mesh.node_count());
        prop_assert_eq!(*sorted.last().unwrap(), mesh.node_count() - 1);
    }

    #[test]
    fn neighbors_are_symmetric(mesh in arb_mesh(), a in 0u32..256) {
        let c = mesh.coord(NodeId(a % mesh.node_count() as u32));
        for n in mesh.neighbors(c) {
            prop_assert!(mesh.neighbors(n).any(|back| back == c));
        }
    }

    #[test]
    fn route_hops_each_charge_exactly_one_link(
        mesh in arb_mesh(),
        a in 0u32..256, b in 0u32..256,
    ) {
        let src = mesh.coord(NodeId(a % mesh.node_count() as u32));
        let dst = mesh.coord(NodeId(b % mesh.node_count() as u32));
        let mut tm = TrafficMatrix::new(mesh);
        tm.charge_route(src, dst, 1.0);
        // Every hop of the route carries exactly the message's bits.
        for hop in xy_route(src, dst) {
            prop_assert_eq!(tm.link_bits(hop.from, hop.dir), 1.0);
        }
        prop_assert_eq!(tm.total_bits(), src.manhattan(dst) as f64);
    }
}
