//! Chip-level power ledger with reservation-based admission control.
//!
//! The paper's scheduler never *reacts* to a TDP violation — it *prevents*
//! one: before a task starts or a test session launches, its projected power
//! is reserved against the current budget; if the reservation does not fit,
//! the action is deferred. [`PowerBudget`] is that ledger. The budget's cap
//! is not necessarily the TDP itself: the PID governor (see [`crate::pid`])
//! moves the cap around the TDP to compensate model/measurement error.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Handle to an active power reservation (returned by
/// [`PowerBudget::reserve`]); pass it back to [`PowerBudget::release`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reservation {
    id: u64,
    watts: f64,
}

impl Reservation {
    /// The reserved power, watts.
    pub fn watts(&self) -> f64 {
        self.watts
    }
}

/// Error returned when a reservation does not fit under the cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsufficientHeadroom {
    /// Watts requested.
    pub requested: f64,
    /// Watts actually available.
    pub available: f64,
}

impl fmt::Display for InsufficientHeadroom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "insufficient power headroom: requested {:.3} W, available {:.3} W",
            self.requested, self.available
        )
    }
}

impl std::error::Error for InsufficientHeadroom {}

/// A power ledger enforcing a movable cap.
///
/// # Examples
///
/// ```
/// use manytest_power::budget::PowerBudget;
///
/// let mut budget = PowerBudget::new(80.0);
/// let task = budget.reserve(30.0)?;
/// assert_eq!(budget.headroom(), 50.0);
/// budget.release(task);
/// assert_eq!(budget.headroom(), 80.0);
/// # Ok::<(), manytest_power::budget::InsufficientHeadroom>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerBudget {
    cap: f64,
    reserved: f64,
    next_id: u64,
    live: Vec<(u64, f64)>,
}

impl PowerBudget {
    /// Creates a ledger with the given cap in watts.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is negative or non-finite.
    pub fn new(cap: f64) -> Self {
        assert!(cap.is_finite() && cap >= 0.0, "cap must be non-negative");
        PowerBudget {
            cap,
            reserved: 0.0,
            next_id: 0,
            live: Vec::new(),
        }
    }

    /// Current cap, watts.
    pub fn cap(&self) -> f64 {
        self.cap
    }

    /// Total reserved power, watts.
    pub fn reserved(&self) -> f64 {
        self.reserved
    }

    /// Remaining headroom (`cap − reserved`, floored at 0).
    pub fn headroom(&self) -> f64 {
        (self.cap - self.reserved).max(0.0)
    }

    /// True if a reservation of `watts` would fit right now.
    pub fn fits(&self, watts: f64) -> bool {
        watts <= self.headroom() + 1e-12
    }

    /// Reserves `watts` against the cap.
    ///
    /// # Errors
    ///
    /// Returns [`InsufficientHeadroom`] when the request exceeds the current
    /// headroom; the ledger is unchanged in that case.
    ///
    /// # Panics
    ///
    /// Panics if `watts` is negative or non-finite.
    pub fn reserve(&mut self, watts: f64) -> Result<Reservation, InsufficientHeadroom> {
        assert!(
            watts.is_finite() && watts >= 0.0,
            "reservation must be non-negative"
        );
        if !self.fits(watts) {
            return Err(InsufficientHeadroom {
                requested: watts,
                available: self.headroom(),
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.reserved += watts;
        self.live.push((id, watts));
        Ok(Reservation { id, watts })
    }

    /// Releases a previously granted reservation.
    ///
    /// # Panics
    ///
    /// Panics if the reservation was already released (double release is a
    /// logic error in the caller's bookkeeping).
    pub fn release(&mut self, reservation: Reservation) {
        let pos = self
            .live
            .iter()
            .position(|&(id, _)| id == reservation.id)
            .expect("reservation released twice or never granted");
        let (_, watts) = self.live.swap_remove(pos);
        self.reserved = (self.reserved - watts).max(0.0);
    }

    /// Adjusts an existing reservation to `new_watts` (e.g. after a DVFS
    /// change), keeping its identity.
    ///
    /// # Errors
    ///
    /// Returns [`InsufficientHeadroom`] if growing the reservation would
    /// exceed the cap; the reservation keeps its old size in that case.
    pub fn resize(
        &mut self,
        reservation: &mut Reservation,
        new_watts: f64,
    ) -> Result<(), InsufficientHeadroom> {
        assert!(
            new_watts.is_finite() && new_watts >= 0.0,
            "reservation must be non-negative"
        );
        let pos = self
            .live
            .iter()
            .position(|&(id, _)| id == reservation.id)
            .expect("resize of unknown reservation");
        let delta = new_watts - reservation.watts;
        if delta > 0.0 && delta > self.headroom() + 1e-12 {
            return Err(InsufficientHeadroom {
                requested: delta,
                available: self.headroom(),
            });
        }
        self.reserved = (self.reserved + delta).max(0.0);
        self.live[pos].1 = new_watts;
        reservation.watts = new_watts;
        Ok(())
    }

    /// Moves the cap (the PID governor's actuator). Existing reservations
    /// are never revoked: if the new cap is below the reserved total, the
    /// headroom is simply zero until reservations drain.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is negative or non-finite.
    pub fn set_cap(&mut self, cap: f64) {
        assert!(cap.is_finite() && cap >= 0.0, "cap must be non-negative");
        self.cap = cap;
    }

    /// Number of live reservations.
    pub fn active_reservations(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release_roundtrip() {
        let mut b = PowerBudget::new(100.0);
        let r1 = b.reserve(40.0).unwrap();
        let r2 = b.reserve(50.0).unwrap();
        assert_eq!(b.reserved(), 90.0);
        assert!((b.headroom() - 10.0).abs() < 1e-12);
        b.release(r1);
        assert_eq!(b.reserved(), 50.0);
        b.release(r2);
        assert_eq!(b.reserved(), 0.0);
        assert_eq!(b.active_reservations(), 0);
    }

    #[test]
    fn over_reservation_is_rejected_and_harmless() {
        let mut b = PowerBudget::new(10.0);
        let _r = b.reserve(8.0).unwrap();
        let err = b.reserve(5.0).unwrap_err();
        assert_eq!(err.requested, 5.0);
        assert!((err.available - 2.0).abs() < 1e-12);
        assert_eq!(b.reserved(), 8.0);
        assert_eq!(b.active_reservations(), 1);
    }

    #[test]
    fn exact_fit_is_allowed() {
        let mut b = PowerBudget::new(10.0);
        assert!(b.reserve(10.0).is_ok());
        assert_eq!(b.headroom(), 0.0);
        assert!(b.fits(0.0));
        assert!(!b.fits(0.1));
    }

    #[test]
    #[should_panic(expected = "released twice")]
    fn double_release_panics() {
        let mut b = PowerBudget::new(10.0);
        let r = b.reserve(1.0).unwrap();
        b.release(r);
        b.release(r);
    }

    #[test]
    fn resize_up_and_down() {
        let mut b = PowerBudget::new(20.0);
        let mut r = b.reserve(5.0).unwrap();
        b.resize(&mut r, 12.0).unwrap();
        assert_eq!(b.reserved(), 12.0);
        assert_eq!(r.watts(), 12.0);
        b.resize(&mut r, 3.0).unwrap();
        assert_eq!(b.reserved(), 3.0);
        b.release(r);
        assert_eq!(b.reserved(), 0.0);
    }

    #[test]
    fn resize_beyond_cap_fails_without_change() {
        let mut b = PowerBudget::new(10.0);
        let mut r = b.reserve(6.0).unwrap();
        let _other = b.reserve(3.0).unwrap();
        assert!(b.resize(&mut r, 9.0).is_err());
        assert_eq!(r.watts(), 6.0);
        assert_eq!(b.reserved(), 9.0);
    }

    #[test]
    fn lowering_cap_never_revokes() {
        let mut b = PowerBudget::new(50.0);
        let _r = b.reserve(40.0).unwrap();
        b.set_cap(20.0);
        assert_eq!(b.reserved(), 40.0);
        assert_eq!(b.headroom(), 0.0);
        assert!(!b.fits(1.0));
    }

    #[test]
    fn raising_cap_creates_headroom() {
        let mut b = PowerBudget::new(10.0);
        let _r = b.reserve(10.0).unwrap();
        b.set_cap(15.0);
        assert!((b.headroom() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn error_display_mentions_watts() {
        let e = InsufficientHeadroom {
            requested: 5.0,
            available: 1.0,
        };
        let s = e.to_string();
        assert!(s.contains("5.000"));
        assert!(s.contains("1.000"));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cap_panics() {
        PowerBudget::new(-1.0);
    }

    #[test]
    fn zero_watt_reservation_is_fine() {
        let mut b = PowerBudget::new(0.0);
        let r = b.reserve(0.0).unwrap();
        b.release(r);
    }
}
