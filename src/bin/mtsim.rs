//! `mtsim` — command-line front end for the manytest simulator.
//!
//! ```sh
//! mtsim --node 16 --rate 800 --ms 300 --seed 7
//! mtsim --node 45 --no-test --governor naive --mapper baseline
//! mtsim --node 16 --faults 10 --windowed-faults 0.5 --trace-csv
//! ```
//!
//! Prints the run report; `--trace-csv` additionally dumps the epoch
//! traces as CSV to stdout (report goes to stderr in that case).

use manytest::prelude::*;
use std::process::ExitCode;

struct Args {
    node: TechNode,
    rate: f64,
    ms: u64,
    seed: u64,
    testing: bool,
    governor: GovernorKind,
    mapper: MapperKind,
    faults: usize,
    windowed_faults: f64,
    intrusive: bool,
    trace_csv: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            node: TechNode::N16,
            rate: 500.0,
            ms: 300,
            seed: 1,
            testing: true,
            governor: GovernorKind::Pid,
            mapper: MapperKind::TestAware,
            faults: 0,
            windowed_faults: 0.0,
            intrusive: false,
            trace_csv: false,
        }
    }
}

const USAGE: &str = "\
mtsim — power-aware online testing of manycore systems (DATE 2015 reproduction)

USAGE:
    mtsim [OPTIONS]

OPTIONS:
    --node <45|32|22|16>        technology node            [default: 16]
    --rate <APPS_PER_SEC>       application arrival rate   [default: 500]
    --ms <MILLISECONDS>         simulated horizon          [default: 300]
    --seed <SEED>               RNG seed                   [default: 1]
    --no-test                   disable online testing
    --governor <pid|naive|fixed> power governor            [default: pid]
    --mapper <tum|baseline>     runtime mapper             [default: tum]
    --faults <N>                inject N latent faults     [default: 0]
    --windowed-faults <FRAC>    fraction of faults that are V/f dependent
    --intrusive                 tests preempt tasks (ablation)
    --trace-csv                 dump epoch traces as CSV on stdout
    --help                      show this help
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--node" => {
                args.node = value("--node")?
                    .parse::<TechNode>()
                    .map_err(|e| e.to_string())?;
            }
            "--rate" => {
                args.rate = value("--rate")?
                    .parse()
                    .map_err(|e| format!("bad --rate: {e}"))?;
            }
            "--ms" => {
                args.ms = value("--ms")?
                    .parse()
                    .map_err(|e| format!("bad --ms: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--no-test" => args.testing = false,
            "--governor" => {
                args.governor = match value("--governor")?.as_str() {
                    "pid" => GovernorKind::Pid,
                    "naive" => GovernorKind::Naive,
                    "fixed" => GovernorKind::FixedTdp,
                    other => return Err(format!("unknown governor `{other}`")),
                };
            }
            "--mapper" => {
                args.mapper = match value("--mapper")?.as_str() {
                    "tum" | "test-aware" => MapperKind::TestAware,
                    "baseline" | "cona" => MapperKind::Baseline,
                    other => return Err(format!("unknown mapper `{other}`")),
                };
            }
            "--faults" => {
                args.faults = value("--faults")?
                    .parse()
                    .map_err(|e| format!("bad --faults: {e}"))?;
            }
            "--windowed-faults" => {
                args.windowed_faults = value("--windowed-faults")?
                    .parse()
                    .map_err(|e| format!("bad --windowed-faults: {e}"))?;
            }
            "--intrusive" => args.intrusive = true,
            "--trace-csv" => args.trace_csv = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let system = SystemBuilder::new(args.node)
        .seed(args.seed)
        .arrival_rate(args.rate)
        .sim_time_ms(args.ms)
        .testing(args.testing)
        .governor(args.governor)
        .mapper(args.mapper)
        .injected_faults(args.faults)
        .vf_windowed_faults(args.windowed_faults)
        .intrusive_testing(args.intrusive)
        .build();
    let system = match system {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: invalid configuration: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = system.run();
    let out = |line: String| {
        if args.trace_csv {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    out(format!(
        "# mtsim: {} mesh, {} apps/s, {} ms, seed {}",
        args.node, args.rate, args.ms, args.seed
    ));
    out(report.summary());
    out(format!(
        "apps: {} arrived / {} completed / {} in flight / {} rejected",
        report.apps_arrived, report.apps_completed, report.apps_in_flight, report.apps_rejected
    ));
    if report.faults_injected > 0 {
        out(format!(
            "faults: {}/{} detected, mean latency {:.1} ms",
            report.faults_detected,
            report.faults_injected,
            report.mean_detection_latency * 1e3
        ));
    }
    if args.trace_csv {
        print!("{}", report.trace.to_csv());
    }
    ExitCode::SUCCESS
}
