//! Regression test for the tentpole guarantee: experiment output does not
//! depend on the worker count. E1 is the broadest driver (every tech node
//! × testing on/off), so it exercises the full submission-order fold.

use manytest_bench::{e1_tech_sweep, Scale};

#[test]
fn e1_is_identical_for_one_and_four_workers() {
    let serial = e1_tech_sweep(Scale::Quick, 1);
    let parallel = e1_tech_sweep(Scale::Quick, 4);
    assert_eq!(serial.len(), parallel.len());
    for (row_serial, row_parallel) in serial.iter().zip(parallel.iter()) {
        // Row-by-row comparison (E1Row: PartialEq over every field,
        // including exact f64 throughput values).
        assert_eq!(row_serial, row_parallel);
    }
}
