//! Technology scaling, DVFS, power modelling and dynamic power budgeting.
//!
//! Dark silicon is a power phenomenon: with every technology generation the
//! number of cores that fit on a die grows faster than the power budget
//! (TDP) that can be dissipated, so a growing fraction of the chip must stay
//! dark or dim. This crate provides everything the simulator needs to make
//! that phenomenon — and the paper's exploitation of it — concrete:
//!
//! * [`tech`] — per-node parameters ([`TechNode`]: 45/32/22/16 nm) — core
//!   count at fixed die area, nominal and near-threshold voltage, frequency,
//!   effective capacitance, leakage — with ITRS-style scaling factors.
//! * [`dvfs`] — the discrete voltage/frequency ladder ([`VfLadder`],
//!   [`OperatingPoint`]) including near-threshold points, derived from the
//!   alpha-power-law delay model.
//! * [`model`] — the per-core power model ([`PowerModel`]):
//!   `P = α·C_eff·V²·f + V·I_leak`, with power gating for dark cores.
//! * [`budget`] — the chip-level power ledger ([`PowerBudget`]): admission
//!   control reserves power before a task or test may start, so the TDP cap
//!   is honoured **by construction**.
//! * [`pid`] — the ICCD'14 PID power-budget controller ([`PidController`])
//!   and the naive on/off TDP policy it is compared against.
//! * [`meter`] — per-category energy accounting ([`PowerMeter`]).
//!
//! # Examples
//!
//! ```
//! use manytest_power::prelude::*;
//!
//! let node = TechNode::N16;
//! let model = PowerModel::for_node(node);
//! let ladder = VfLadder::for_node(node, 5);
//! let busy = model.core_power(ladder.max(), 0.5);
//! let dim = model.core_power(ladder.min(), 0.5);
//! assert!(dim < busy, "near-threshold operation must save power");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod dvfs;
pub mod meter;
pub mod model;
pub mod pid;
pub mod tech;

pub use budget::{PowerBudget, Reservation};
pub use dvfs::{OperatingPoint, VfLadder, VfLevel};
pub use meter::{PowerCategory, PowerMeter};
pub use model::PowerModel;
pub use pid::{NaiveTdpPolicy, PidController, PowerGovernor};
pub use tech::TechNode;

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::budget::{PowerBudget, Reservation};
    pub use crate::dvfs::{OperatingPoint, VfLadder, VfLevel};
    pub use crate::meter::{PowerCategory, PowerMeter};
    pub use crate::model::PowerModel;
    pub use crate::pid::{NaiveTdpPolicy, PidController, PowerGovernor};
    pub use crate::tech::TechNode;
}
