//! Square-region availability search.
//!
//! The runtime mapper of this paper family (MapPro, CoNA) picks a *first
//! node* for an incoming application by looking for a square region around a
//! candidate centre that contains enough available cores, preferring small,
//! dense regions (low dispersion → low congestion). [`Region`] is a
//! Chebyshev ball clipped to the mesh; [`RegionSearch`] scans candidate
//! centres and returns the best `(centre, radius)` under a caller-supplied
//! per-node desirability score.

use crate::coord::Coord;
use crate::topology::Mesh2D;
use serde::{Deserialize, Serialize};

/// A square region: all mesh nodes within Chebyshev distance `radius` of
/// `center`, clipped to the mesh boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Region {
    /// Centre of the square.
    pub center: Coord,
    /// Chebyshev radius (0 = just the centre).
    pub radius: u16,
}

impl Region {
    /// Creates a region.
    pub const fn new(center: Coord, radius: u16) -> Self {
        Region { center, radius }
    }

    /// Iterates over the mesh nodes inside the region, row-major.
    pub fn iter(self, mesh: Mesh2D) -> impl Iterator<Item = Coord> {
        let x0 = self.center.x.saturating_sub(self.radius);
        let y0 = self.center.y.saturating_sub(self.radius);
        let x1 = (self.center.x + self.radius).min(mesh.width() - 1);
        let y1 = (self.center.y + self.radius).min(mesh.height() - 1);
        (y0..=y1).flat_map(move |y| (x0..=x1).map(move |x| Coord { x, y }))
    }

    /// Number of mesh nodes inside the region.
    pub fn len(self, mesh: Mesh2D) -> usize {
        self.iter(mesh).count()
    }

    /// True if the clipped region is empty (cannot happen for a centre
    /// inside the mesh, but kept for API completeness).
    pub fn is_empty(self, mesh: Mesh2D) -> bool {
        !mesh.contains(self.center) && self.len(mesh) == 0
    }

    /// True if `c` lies inside the (clipped) region.
    pub fn contains(self, mesh: Mesh2D, c: Coord) -> bool {
        mesh.contains(c) && self.center.chebyshev(c) as u16 <= self.radius
    }
}

/// Result of a region search: where to map and how dispersed the region is.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionChoice {
    /// Chosen region.
    pub region: Region,
    /// Number of available nodes inside the region.
    pub available: usize,
    /// Score of the winning candidate (lower is better).
    pub score: f64,
}

/// Square-region first-node search over a mesh.
///
/// # Examples
///
/// ```
/// use manytest_noc::prelude::*;
///
/// let mesh = Mesh2D::new(8, 8);
/// let search = RegionSearch::new(mesh);
/// // Everything free, no preference: any radius-1 square fits 4 cores.
/// let choice = search
///     .find(4, |_| true, |_| 0.0)
///     .expect("mesh has room");
/// assert!(choice.available >= 4);
/// assert!(choice.region.radius <= 1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RegionSearch {
    mesh: Mesh2D,
}

impl RegionSearch {
    /// Creates a search over `mesh`.
    pub fn new(mesh: Mesh2D) -> Self {
        RegionSearch { mesh }
    }

    /// The mesh being searched.
    pub fn mesh(&self) -> Mesh2D {
        self.mesh
    }

    /// Finds the best region holding at least `required` nodes for which
    /// `is_free` returns true.
    ///
    /// Candidates are ranked by `radius` first (small, dense regions win,
    /// minimising dispersion), then by the sum of `node_score` over the free
    /// nodes of the region (lower is better — callers express utilisation or
    /// test-criticality preferences here), then by centre id for
    /// determinism. Returns `None` when fewer than `required` nodes are free
    /// in the whole mesh.
    pub fn find<F, S>(&self, required: usize, is_free: F, node_score: S) -> Option<RegionChoice>
    where
        F: Fn(Coord) -> bool,
        S: Fn(Coord) -> f64,
    {
        if required == 0 {
            // Degenerate but well-defined: an empty application fits anywhere.
            return Some(RegionChoice {
                region: Region::new(Coord::new(0, 0), 0),
                available: 0,
                score: 0.0,
            });
        }
        let total_free = self.mesh.coords().filter(|&c| is_free(c)).count();
        if total_free < required {
            return None;
        }
        let max_radius = self.mesh.width().max(self.mesh.height());
        let mut best: Option<(u16, f64, Coord)> = None;
        let mut best_available = 0usize;
        for center in self.mesh.coords() {
            if !is_free(center) {
                continue;
            }
            // Smallest radius around this centre that collects `required`
            // free nodes.
            let mut found: Option<(u16, usize, f64)> = None;
            for radius in 0..=max_radius {
                let region = Region::new(center, radius);
                let mut avail = 0usize;
                let mut score = 0.0;
                for c in region.iter(self.mesh) {
                    if is_free(c) {
                        avail += 1;
                        score += node_score(c);
                    }
                }
                if avail >= required {
                    found = Some((radius, avail, score));
                    break;
                }
                // Region already spans the whole mesh and still lacks nodes.
                if region.len(self.mesh) == self.mesh.node_count() {
                    break;
                }
            }
            if let Some((radius, avail, score)) = found {
                let candidate = (radius, score, center);
                let better = match &best {
                    None => true,
                    Some((br, bs, bc)) => {
                        (radius, score) < (*br, *bs)
                            || ((radius, score) == (*br, *bs)
                                && self.mesh.node_id(center) < self.mesh.node_id(*bc))
                    }
                };
                if better {
                    best = Some(candidate);
                    best_available = avail;
                }
            }
        }
        best.map(|(radius, score, center)| RegionChoice {
            region: Region::new(center, radius),
            available: best_available,
            score,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_iter_clips_to_mesh() {
        let mesh = Mesh2D::new(4, 4);
        let corner = Region::new(Coord::new(0, 0), 1);
        assert_eq!(corner.len(mesh), 4); // 2x2 after clipping
        let interior = Region::new(Coord::new(2, 2), 1);
        assert_eq!(interior.len(mesh), 9);
    }

    #[test]
    fn region_contains_matches_iter() {
        let mesh = Mesh2D::new(5, 5);
        let r = Region::new(Coord::new(1, 3), 2);
        for c in mesh.coords() {
            let by_iter = r.iter(mesh).any(|rc| rc == c);
            assert_eq!(by_iter, r.contains(mesh, c), "mismatch at {c}");
        }
    }

    #[test]
    fn radius_zero_is_single_node() {
        let mesh = Mesh2D::new(3, 3);
        let r = Region::new(Coord::new(1, 1), 0);
        assert_eq!(r.iter(mesh).collect::<Vec<_>>(), vec![Coord::new(1, 1)]);
    }

    #[test]
    fn search_prefers_smallest_radius() {
        let mesh = Mesh2D::new(8, 8);
        let search = RegionSearch::new(mesh);
        let choice = search.find(1, |_| true, |_| 0.0).unwrap();
        assert_eq!(choice.region.radius, 0);
        let choice9 = search.find(9, |_| true, |_| 0.0).unwrap();
        assert_eq!(choice9.region.radius, 1);
    }

    #[test]
    fn search_respects_availability() {
        let mesh = Mesh2D::new(4, 4);
        let search = RegionSearch::new(mesh);
        // Only the top row is free.
        let is_free = |c: Coord| c.y == 3;
        let choice = search.find(3, is_free, |_| 0.0).unwrap();
        assert!(choice.available >= 3);
        let free_in_region = choice
            .region
            .iter(mesh)
            .filter(|&c| is_free(c))
            .count();
        assert!(free_in_region >= 3);
    }

    #[test]
    fn search_fails_when_not_enough_free() {
        let mesh = Mesh2D::new(3, 3);
        let search = RegionSearch::new(mesh);
        assert!(search.find(10, |_| true, |_| 0.0).is_none());
        assert!(search.find(1, |_| false, |_| 0.0).is_none());
    }

    #[test]
    fn search_uses_node_score_to_break_radius_ties() {
        let mesh = Mesh2D::new(8, 2);
        let search = RegionSearch::new(mesh);
        // Single-node request, all free: score should steer the pick to the
        // cheapest node.
        let cheap = Coord::new(5, 1);
        let choice = search
            .find(1, |_| true, |c| if c == cheap { -10.0 } else { 0.0 })
            .unwrap();
        assert_eq!(choice.region.center, cheap);
    }

    #[test]
    fn search_is_deterministic() {
        let mesh = Mesh2D::new(6, 6);
        let search = RegionSearch::new(mesh);
        let a = search.find(4, |c| c.x % 2 == 0, |_| 1.0).unwrap();
        let b = search.find(4, |c| c.x % 2 == 0, |_| 1.0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_required_is_trivially_satisfied() {
        let mesh = Mesh2D::new(2, 2);
        let choice = RegionSearch::new(mesh).find(0, |_| false, |_| 0.0).unwrap();
        assert_eq!(choice.available, 0);
    }

    #[test]
    fn whole_mesh_request_spans_mesh() {
        let mesh = Mesh2D::new(4, 4);
        let choice = RegionSearch::new(mesh).find(16, |_| true, |_| 0.0).unwrap();
        assert_eq!(choice.available, 16);
        assert_eq!(choice.region.len(mesh), 16);
    }
}
