//! A minimal recursive-descent JSON parser.
//!
//! The analyzer is dependency-free, but two subsystems need to *read*
//! JSON it (or a previous run of it) wrote: the incremental cache
//! ([`crate::cache`]) reloads `target/lint-cache.json`, and the SARIF
//! tests structurally validate `lint.sarif`. This is a full JSON value
//! parser — unlike the flat-object scanner in the golden-schema rule it
//! handles nesting — but it stays deliberately small: objects preserve
//! key order as a `Vec`, numbers are `f64`, and errors carry a byte
//! offset rather than a line/column.

/// One parsed JSON value. Object keys keep their source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match; `None` on other kinds).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte `{}` at {}", *c as char, *pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("malformed number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not reassembled — the
                        // analyzer never writes them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unvalidated — input came from a &str).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).unwrap_or("\u{fffd}"));
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // [
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // {
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        members.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = parse(
            "{\"a\": [1, 2.5, -3], \"b\": {\"c\": \"x\\ny\", \"d\": true}, \"e\": null}",
        )
        .expect("parses");
        assert_eq!(v.get("a").and_then(|a| a.as_arr()).map(|a| a.len()), Some(3));
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(|c| c.as_str()),
            Some("x\ny")
        );
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn key_order_is_preserved() {
        let v = parse("{\"z\": 1, \"a\": 2}").expect("parses");
        match v {
            Value::Obj(m) => assert_eq!(m[0].0, "z"),
            _ => panic!("expected object"),
        }
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\": ").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_and_utf8_pass_through() {
        let v = parse("\"caf\\u00e9 → ok\"").expect("parses");
        assert_eq!(v.as_str(), Some("café → ok"));
    }
}
