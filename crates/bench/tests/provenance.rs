//! Provenance-DAG property tests across every experiment driver, plus
//! the pinned first-divergence fixture for `repro diff`.
//!
//! The property half re-checks the causal-graph invariants *outside* the
//! audit layer (which already runs them on every captured run): event
//! ids mint strictly monotonically, every cause precedes its effect, and
//! every fault-response outcome chains back to a legitimate root. The
//! fixture half pins the full `repro diff` output for E11 against a
//! reseeded twin — the divergence point of two seeded runs is itself a
//! deterministic artifact, so drift in *where the histories split* is a
//! behavioural change to review, not absorb:
//!
//! ```sh
//! MANYTEST_UPDATE_GOLDEN=1 cargo test -p manytest-bench --test provenance
//! git diff crates/bench/tests/golden/   # review, then commit
//! ```

use manytest_bench::diff::{run_diff, DiffTarget};
use manytest_bench::events::{run_probe, PROBE_IDS};
use manytest_bench::Scale;
use manytest_core::prelude::*;
use std::path::PathBuf;

/// The reseeded twin the diff fixture compares E11 against.
const DIFF_SEED2: u64 = 111;

#[test]
fn provenance_dag_is_acyclic_and_time_ordered_across_all_probes() {
    for id in PROBE_IDS {
        let report = run_probe(id, Scale::Quick).expect("known probe id");
        // The audit layer's full double-entry + DAG validation.
        validate_events(&report).unwrap_or_else(|e| panic!("probe {id}: {e}"));
        let records = report.events.events();
        let graph = ProvenanceGraph::build(records);
        let mut last_id: Option<u64> = None;
        let mut last_t = f64::NEG_INFINITY;
        for rec in records {
            // Strictly monotone ids and non-decreasing times: a cause
            // link (cause.id < id) therefore always points backwards in
            // time, which makes the graph acyclic by construction.
            assert!(
                last_id.is_none_or(|p| rec.id.0 > p),
                "probe {id}: event ids not strictly increasing at #{}",
                rec.id.0
            );
            assert!(
                rec.t >= last_t,
                "probe {id}: time went backwards at #{}",
                rec.id.0
            );
            last_id = Some(rec.id.0);
            last_t = rec.t;
            if let Some(link) = rec.cause {
                assert!(
                    link.id.0 < rec.id.0,
                    "probe {id}: #{} claims a cause that does not precede it",
                    rec.id.0
                );
            }
            // Every fault-response outcome is reachable from a root.
            let is_response = matches!(
                rec.ev,
                SimEvent::CoreQuarantined { .. }
                    | SimEvent::AppMigrated { .. }
                    | SimEvent::AppAborted { .. }
                    | SimEvent::AppRestarted { .. }
            );
            if is_response && report.events.dropped() == 0 {
                let chain = graph.chain_to_root(rec.id);
                let root = chain.last().expect("chain contains the record");
                assert!(
                    SimEvent::ROOT_KINDS.contains(&root.ev.kind()),
                    "probe {id}: #{} chain stops at non-root {}",
                    rec.id.0,
                    root.ev.kind()
                );
            }
        }
    }
}

#[test]
fn fault_response_probe_links_a_meaningful_share_of_events() {
    // E11 is the fault-response scenario: detections, quarantines and
    // migrations must all arrive as *caused* events, so its graph has to
    // carry real edge mass (a regression that silently drops cause links
    // would still pass the per-record checks above).
    let report = run_probe("e11", Scale::Quick).expect("known probe id");
    let graph = ProvenanceGraph::build(report.events.events());
    assert!(
        graph.edge_count() > 100,
        "e11 carries only {} cause links",
        graph.edge_count()
    );
}

fn diff_golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("e11.seed{DIFF_SEED2}.diff.txt"))
}

#[test]
fn e11_first_divergence_against_reseeded_twin_matches_the_golden_fixture() {
    let text = run_diff("e11", DiffTarget::Seed(DIFF_SEED2), Scale::Quick)
        .expect("known probe id");
    // The diff names a concrete first divergence with both chains.
    assert!(
        text.contains("first divergence at event index"),
        "reseeded runs must diverge:\n{text}"
    );
    let path = diff_golden_path();
    if std::env::var_os("MANYTEST_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create golden dir");
        std::fs::write(&path, &text).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with \
             MANYTEST_UPDATE_GOLDEN=1 cargo test -p manytest-bench --test provenance",
            path.display()
        )
    });
    assert_eq!(
        text,
        golden,
        "e11 first-divergence output drifted from {}; if intentional, regenerate \
         with MANYTEST_UPDATE_GOLDEN=1 and commit the diff",
        path.display()
    );
}

#[test]
fn self_diff_of_every_golden_probe_reports_zero_divergence() {
    for id in ["e3", "e11"] {
        let text = run_diff(id, DiffTarget::Probe(id), Scale::Quick).expect("known probe id");
        assert!(
            text.contains("no divergence"),
            "probe {id} self-diff found drift — determinism regression:\n{text}"
        );
    }
}
