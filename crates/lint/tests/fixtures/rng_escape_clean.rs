pub struct Job {
    rng: SimRng,
}

pub fn derive_stream(parent: &mut SimRng) -> SimRng {
    parent.derive()
}
