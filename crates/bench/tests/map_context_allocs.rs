//! Holds `System::map_context` to its documented guarantee: zero heap
//! allocations after the first control tick. The snapshot must be rebuilt
//! every epoch for every pending app, so an allocation here multiplies
//! across the whole evaluation suite.
//!
//! This file contains exactly one test: the counting allocator is
//! shared, and a concurrent test in the same binary would pollute the
//! measurement. Only allocations made by the *measured* thread are
//! counted — the libtest harness's main thread lazily allocates its
//! channel-park context the first time it blocks waiting for the test
//! result, and that race would otherwise land inside the window.

use manytest_core::exec::CoreMode;
use manytest_core::prelude::*;
use manytest_core::store::CoreStore;
use manytest_map::context::MapContext;
use manytest_noc::{Coord, Mesh2D};
use manytest_power::{PowerBudget, VfLadder, VfLevel};
use manytest_sbst::{RoutineId, TestSession};
use manytest_workload::{AppId, TaskId};
use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // const-init keeps the flag itself off the heap: a `Cell<bool>` needs
    // no drop registration, so reading it from the allocator can't recurse.
    static MEASURED: Cell<bool> = const { Cell::new(false) };
}

fn counted() -> bool {
    // `try_with` instead of `with`: allocations during thread teardown
    // (after TLS destruction) must not panic inside the allocator.
    MEASURED.try_with(Cell::get).unwrap_or(false)
}

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counted() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { SystemAlloc.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counted() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn map_context_allocates_nothing_after_the_first_tick() {
    MEASURED.with(|m| m.set(true));
    let mut system = SystemBuilder::new(TechNode::N16)
        .seed(7)
        .build()
        .expect("valid config");
    // First tick: the scratch buffers size themselves to the platform.
    std::hint::black_box(system.map_context(0.0).free_count());

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let mut t = 0.0;
    for _ in 0..1_000 {
        t += 1e-4;
        std::hint::black_box(system.map_context(t).free_count());
        // Telemetry shares the guarantee: events are stack-only values and
        // the default null observer must discard them without touching the
        // heap, so emission can sit on the control loop's hot path.
        system.observe(
            t,
            SimEvent::CapAdjusted {
                cap: 100.0,
                measured: 42.0,
                headroom: 58.0,
                reservations: 3,
            },
        );
        system.observe(
            t,
            SimEvent::TestLaunched {
                core: 7,
                routine: 1,
                level: 2,
                power: 0.5,
                headroom: 57.5,
            },
        );
    }
    let allocations = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocations, 0,
        "System::map_context heap-allocated {allocations} times across \
         1000 warm refills (with event emission); the scratch-buffer and \
         null-observer guarantees are broken"
    );

    // The struct-of-arrays store shares the guarantee: every phase-loop
    // mutation patches flat arrays and maintained views in place, so the
    // control loop's per-epoch store traffic is alloc-free once warm.
    let n = 64;
    let mut store = CoreStore::new(n);
    let op = VfLadder::for_node(TechNode::N16, 5).max();
    let session = TestSession::new(0, RoutineId(0), VfLevel(0), 100, 1.0e9, 0.0);
    let mut budget = PowerBudget::new(10.0);
    let reservation = budget.reserve(1.0).expect("budget has headroom");
    // Warm the dirty list to its full-mesh high-water capacity, then
    // drain it. (advance_generation's debug-build consistency assert
    // rebuilds the views, which allocates — warmup absorbs that too.)
    for core in 0..n {
        store.set_owner(core, Some((AppId(0), TaskId(0))));
        store.set_owner(core, None);
    }
    store.advance_generation();

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for tick in 0..1_000usize {
        let core = tick % n;
        // One admission + teardown round trip through the flat arrays.
        store.set_mode(core, CoreMode::Idle(op));
        store.set_owner(core, Some((AppId(1), TaskId(0))));
        store.set_mode(core, CoreMode::Busy(op));
        store.set_owner(core, None);
        store.set_mode(core, CoreMode::Off);
        // One test-session lifecycle.
        let gen = store.begin_session(core, session, reservation);
        std::hint::black_box(gen);
        let (s, r) = store.end_session(core);
        std::hint::black_box((s.is_some(), r.is_some()));
        store.set_accrued_since(core, tick as f64 * 1e-4);
        // The maintained views the phase loops read every epoch.
        let mut visited = 0usize;
        store.for_each_testable(|c| visited += c);
        std::hint::black_box((
            store.mappable_count(),
            store.testing_count(),
            store.testable_words().len(),
            store.dirty_cores().len(),
            visited,
        ));
    }
    let allocations = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocations, 0,
        "CoreStore heap-allocated {allocations} times across 1000 warm \
         mutate/scan rounds; a maintained view or the dirty list is \
         reallocating on the hot path"
    );

    // The incremental free-set path: admissions patch the map context in
    // place (set_free / set_criticality) and read the maintained
    // mappable count; none of it may touch the heap once built.
    let mesh = Mesh2D::new(8, 8);
    let mut ctx = MapContext::all_free(mesh);
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for tick in 0..1_000usize {
        let c = Coord::new((tick % 8) as u16, (tick / 8 % 8) as u16);
        ctx.set_free(c, false);
        ctx.set_criticality(c, (tick % 7) as f64);
        ctx.set_healthy(c, tick % 3 != 0);
        std::hint::black_box(ctx.free_count());
        ctx.set_healthy(c, true);
        ctx.set_free(c, true);
    }
    let allocations = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocations, 0,
        "MapContext delta patching heap-allocated {allocations} times \
         across 1000 warm admission rounds"
    );
}
