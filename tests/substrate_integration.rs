//! Cross-crate integration below the full system: mapper × workload × NoC,
//! scheduler × power × coverage, aging × criticality chains.

use manytest::aging::{AgingModel, CriticalityModel, StressTracker};
use manytest::map::{ConaMapper, MapContext, Mapper, TestAwareMapper};
use manytest::noc::{Coord, Mesh2D, TrafficMatrix};
use manytest::power::{PowerBudget, PowerModel, TechNode, VfLadder};
use manytest::sbst::{TestCandidate, TestScheduler, TestSchedulerConfig};
use manytest::sim::SimRng;
use manytest::workload::{presets, TaskGraphGenerator, WorkloadMix};

#[test]
fn mappers_place_every_preset_without_core_sharing() {
    let mesh = Mesh2D::new(8, 8);
    let ctx = MapContext::all_free(mesh);
    let mappers: Vec<Box<dyn Mapper>> = vec![
        Box::new(ConaMapper::new()),
        Box::new(TestAwareMapper::default()),
    ];
    for mapper in &mappers {
        for app in presets::all() {
            let m = mapper
                .map(&ctx, &app)
                .unwrap_or_else(|| panic!("{} failed on {}", mapper.name(), app.name()));
            assert!(m.is_valid_for(mesh, &app));
            // Charging the mapped traffic must stay inside the mesh.
            let mut tm = TrafficMatrix::new(mesh);
            for e in app.edges() {
                tm.charge_route(m.coord_of(e.from), m.coord_of(e.to), e.bits);
            }
            assert!(tm.total_bits() >= 0.0);
        }
    }
}

#[test]
fn sequential_mappings_never_overlap() {
    let mesh = Mesh2D::new(8, 8);
    let mut ctx = MapContext::all_free(mesh);
    let mapper = ConaMapper::new();
    let mut occupied: Vec<Coord> = Vec::new();
    // Admit presets until the mesh is too full.
    for app in [presets::vopd(), presets::mpeg4(), presets::mwd(), presets::pip()] {
        if let Some(m) = mapper.map(&ctx, &app) {
            for &c in m.coords() {
                assert!(!occupied.contains(&c), "double allocation at {c}");
                occupied.push(c);
                ctx.set_free(c, false);
            }
        }
    }
    assert!(occupied.len() >= 36, "at least three apps should have fit");
}

#[test]
fn random_workload_maps_and_respects_availability() {
    let mesh = Mesh2D::new(12, 12);
    let mut rng = SimRng::seed_from(77);
    let generator = TaskGraphGenerator::default();
    let mut ctx = MapContext::all_free(mesh);
    // Randomly occupy a third of the mesh.
    for c in mesh.coords() {
        if rng.gen_bool(0.33) {
            ctx.set_free(c, false);
        }
    }
    let mapper = TestAwareMapper::default();
    for i in 0..20 {
        let app = generator.generate(&mut rng, format!("it{i}"));
        if let Some(m) = mapper.map(&ctx, &app) {
            for &c in m.coords() {
                assert!(ctx.is_free(c), "mapped onto occupied {c}");
            }
        }
    }
}

#[test]
fn scheduler_budget_loop_never_over_reserves() {
    let node = TechNode::N16;
    let mut scheduler = TestScheduler::new(TestSchedulerConfig::default(), node);
    let mut budget = PowerBudget::new(10.0);
    let candidates: Vec<TestCandidate> = (0..64)
        .map(|core| TestCandidate {
            core,
            criticality: 1.0 + core as f64 * 0.01,
        })
        .collect();
    // Plan against the ledger's headroom, then actually reserve: every
    // planned launch must fit.
    let launches = scheduler.plan(&candidates, budget.headroom());
    assert!(!launches.is_empty());
    for launch in &launches {
        budget
            .reserve(launch.power)
            .expect("scheduler must not overcommit the headroom it was given");
    }
    assert!(budget.reserved() <= budget.cap() + 1e-9);
}

#[test]
fn aging_chain_prioritizes_the_stressed_core() {
    let aging = AgingModel::default();
    let crit = CriticalityModel::default();
    let mut stress = StressTracker::new(4, 0.2);
    // Core 2 runs hot for 100 epochs; others idle.
    for _ in 0..100 {
        stress.record_epoch(2, &aging, 1.5, 1.0, 0.001);
        stress.record_epoch(0, &aging, 0.0, 0.0, 0.001);
    }
    let now = 0.1;
    let candidates: Vec<TestCandidate> = (0..4)
        .map(|core| TestCandidate {
            core,
            criticality: crit.criticality(stress.core(core), now),
        })
        .collect();
    let mut scheduler = TestScheduler::with_library(
        TestSchedulerConfig {
            criticality_threshold: 0.0,
            ..TestSchedulerConfig::default()
        },
        TechNode::N16,
        manytest::sbst::RoutineLibrary::standard(),
        4,
    );
    let launches = scheduler.plan(&candidates, 100.0);
    assert_eq!(launches[0].core, 2, "hot core must be tested first");
}

#[test]
fn power_model_and_ladder_agree_across_nodes() {
    for node in TechNode::ALL {
        let model = PowerModel::for_node(node);
        let ladder = VfLadder::for_node(node, 5);
        // Monotone power over the ladder at fixed activity.
        let powers: Vec<f64> = ladder.iter().map(|op| model.core_power(op, 0.5)).collect();
        assert!(powers.windows(2).all(|w| w[1] > w[0]), "{node}: {powers:?}");
        // Testing at nominal draws more than the typical workload.
        assert!(model.test_power(ladder.max()) > model.core_power(ladder.max(), 0.5));
    }
}

#[test]
fn workload_mix_feeds_mappable_apps() {
    let mesh = Mesh2D::new(16, 16);
    let ctx = MapContext::all_free(mesh);
    let mut mix = WorkloadMix::standard();
    let mut rng = SimRng::seed_from(31337);
    let mapper = ConaMapper::new();
    for _ in 0..50 {
        let app = mix.sample(&mut rng);
        assert!(app.validate().is_ok());
        assert!(
            mapper.map(&ctx, &app).is_some(),
            "every standard-mix app fits an empty 16x16 mesh"
        );
    }
}
