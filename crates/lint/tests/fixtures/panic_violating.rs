pub fn lookup(xs: &[u32], i: usize) -> u32 {
    let v = xs.get(i).copied().unwrap();
    if v > 100 {
        panic!("out of range");
    }
    v
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_test_modules_is_fine() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
