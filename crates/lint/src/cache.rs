//! Incremental cache: `target/lint-cache.json`.
//!
//! Per-file rule results are pure in the file's content, and the
//! workspace pass is pure in the contents of every input — so both are
//! keyed by FNV-1a content hashes and reused verbatim when the hash
//! matches. Only the allow audit re-runs every time (it is the one pass
//! whose output couples findings to suppressions across files, and it
//! is cheap). A warm run on an unchanged tree re-lexes but re-analyzes
//! nothing; findings replayed from the cache render byte-identically to
//! a cold run.
//!
//! The cache is strictly best-effort: an unreadable, unparseable or
//! version-skewed file is treated as absent, and write failures are
//! swallowed (CI may run on a read-only checkout).

use crate::diag::{escape, Finding};
use crate::json::{self, Value};
use crate::source::Workspace;
use crate::LintReport;
use std::path::Path;

/// Cache location, relative to the workspace root. Lives under
/// `target/` so `cargo clean` clears it.
pub const CACHE_REL_PATH: &str = "target/lint-cache.json";

/// Bump when the cache schema or any rule semantics change in a way
/// the content hash cannot see.
const VERSION: u64 = 1;

/// FNV-1a, 64-bit: tiny, dependency-free, and plenty for a same-machine
/// content-equality check (this is not an integrity boundary).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// What the warm path reused, for `--verbose`-style reporting and the
/// cache tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct CacheStats {
    /// Files whose per-file findings were replayed from the cache.
    pub file_hits: usize,
    /// Files that were re-analyzed.
    pub file_misses: usize,
    /// Whether the workspace pass was replayed.
    pub workspace_hit: bool,
}

struct CachedRun {
    workspace_hash: u64,
    workspace_findings: Vec<Finding>,
    /// `(rel_path, content hash, findings)` per file.
    files: Vec<(String, u64, Vec<Finding>)>,
}

/// Lints `root` through the cache: replays per-file and workspace
/// findings whose content hashes match, re-runs the rest, re-audits
/// allows unconditionally, and rewrites the cache.
pub fn lint_workspace_cached(root: &Path) -> std::io::Result<(LintReport, CacheStats)> {
    let ws = Workspace::load(root)?;
    let cache_path = root.join(CACHE_REL_PATH);
    let old = std::fs::read_to_string(&cache_path)
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .and_then(|doc| load(&doc));

    let hashes: Vec<u64> = ws.files.iter().map(|f| fnv1a64(f.text.as_bytes())).collect();
    let ws_hash = workspace_hash(&ws, &hashes);

    let mut stats = CacheStats::default();
    let mut per_file: Vec<(String, u64, Vec<Finding>)> = Vec::with_capacity(ws.files.len());
    for (file, &hash) in ws.files.iter().zip(&hashes) {
        let cached = old.as_ref().and_then(|c| {
            c.files
                .iter()
                .find(|(path, h, _)| *h == hash && path == &file.rel_path)
        });
        let findings = match cached {
            Some((_, _, findings)) => {
                stats.file_hits += 1;
                findings.clone()
            }
            None => {
                stats.file_misses += 1;
                crate::run_file_rules(file)
            }
        };
        per_file.push((file.rel_path.clone(), hash, findings));
    }
    let workspace_findings = match old.as_ref().filter(|c| c.workspace_hash == ws_hash) {
        Some(c) => {
            stats.workspace_hit = true;
            c.workspace_findings.clone()
        }
        None => crate::run_workspace_rules(&ws),
    };

    let _ = write_cache(&cache_path, ws_hash, &workspace_findings, &per_file);

    let mut findings: Vec<Finding> =
        per_file.into_iter().flat_map(|(_, _, f)| f).collect();
    findings.extend(workspace_findings);
    let findings = crate::audit_allows(&ws, findings, None);
    Ok((
        LintReport {
            findings,
            files_scanned: ws.files.len(),
        },
        stats,
    ))
}

/// Hash of every workspace input: the sorted `(path, content hash)`
/// sequence. Any file added, removed, renamed or edited changes it.
fn workspace_hash(ws: &Workspace, hashes: &[u64]) -> u64 {
    let mut acc = Vec::new();
    for (file, &h) in ws.files.iter().zip(hashes) {
        acc.extend_from_slice(file.rel_path.as_bytes());
        acc.push(0);
        acc.extend_from_slice(&h.to_le_bytes());
    }
    fnv1a64(&acc)
}

fn write_cache(
    path: &Path,
    ws_hash: u64,
    ws_findings: &[Finding],
    per_file: &[(String, u64, Vec<Finding>)],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"version\": {VERSION},\n"));
    out.push_str(&format!("  \"workspace_hash\": \"{ws_hash:016x}\",\n"));
    out.push_str("  \"workspace_findings\": [");
    write_findings(&mut out, ws_findings, "    ");
    out.push_str("],\n  \"files\": [");
    for (i, (rel_path, hash, findings)) in per_file.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"path\": \"{}\", \"hash\": \"{hash:016x}\", \"findings\": [",
            escape(rel_path)
        ));
        write_findings(&mut out, findings, "      ");
        out.push_str("]}");
    }
    out.push_str(if per_file.is_empty() { "]\n" } else { "\n  ]\n" });
    out.push_str("}\n");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, out)
}

fn write_findings(out: &mut String, findings: &[Finding], indent: &str) {
    for (i, f) in findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "{indent}{{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \
             \"message\": \"{}\", \"rationale\": \"{}\"}}",
            escape(f.rule),
            escape(&f.file),
            f.line,
            f.col,
            escape(&f.message),
            escape(f.rationale)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
        out.push_str(&indent[..indent.len() - 2]);
    }
}

fn load(doc: &Value) -> Option<CachedRun> {
    if doc.get("version")?.as_num()? as u64 != VERSION {
        return None;
    }
    let workspace_hash = u64::from_str_radix(doc.get("workspace_hash")?.as_str()?, 16).ok()?;
    let workspace_findings = load_findings(doc.get("workspace_findings")?)?;
    let mut files = Vec::new();
    for entry in doc.get("files")?.as_arr()? {
        files.push((
            entry.get("path")?.as_str()?.to_string(),
            u64::from_str_radix(entry.get("hash")?.as_str()?, 16).ok()?,
            load_findings(entry.get("findings")?)?,
        ));
    }
    Some(CachedRun {
        workspace_hash,
        workspace_findings,
        files,
    })
}

fn load_findings(value: &Value) -> Option<Vec<Finding>> {
    let mut findings = Vec::new();
    for entry in value.as_arr()? {
        findings.push(Finding {
            // Rule ids and rationales are `&'static str` in a live run;
            // replayed ones leak their (small, deduplicated-per-run)
            // strings for the life of the process.
            rule: intern(entry.get("rule")?.as_str()?),
            file: entry.get("file")?.as_str()?.to_string(),
            line: entry.get("line")?.as_num()? as u32,
            col: entry.get("col")?.as_num()? as u32,
            message: entry.get("message")?.as_str()?.to_string(),
            rationale: intern(entry.get("rationale")?.as_str()?),
        });
    }
    Some(findings)
}

/// Leaks `s` as `&'static str`, deduplicating within the process so a
/// thousand replayed findings of one rule cost one allocation.
fn intern(s: &str) -> &'static str {
    use std::sync::{Mutex, OnceLock};
    static POOL: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(Vec::new()));
    let mut pool = pool.lock().expect("intern pool poisoned");
    if let Some(hit) = pool.iter().find(|&&p| p == s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    pool.push(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_content_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
        assert_eq!(fnv1a64(b"abc"), fnv1a64(b"abc"));
    }

    #[test]
    fn cache_round_trips_findings_bytewise() {
        let findings = vec![Finding {
            rule: "hot-path-purity",
            file: "crates/core/src/system.rs".into(),
            line: 7,
            col: 3,
            message: "hot path `control → probe`: `vec` allocates (alloc)".into(),
            rationale: "say \"why\"\nor refactor",
        }];
        let dir = std::env::temp_dir().join(format!(
            "manytest-lint-cache-{}-{:x}",
            std::process::id(),
            fnv1a64(b"round-trip")
        ));
        let path = dir.join("lint-cache.json");
        write_cache(&path, 0xabcd, &findings, &[("a.rs".into(), 1, findings.clone())])
            .expect("write cache");
        let text = std::fs::read_to_string(&path).expect("read back");
        let run = load(&json::parse(&text).expect("parse")).expect("load");
        assert_eq!(run.workspace_hash, 0xabcd);
        assert_eq!(run.workspace_findings, findings);
        assert_eq!(run.files.len(), 1);
        assert_eq!(run.files[0].2, findings);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_skew_discards_the_cache() {
        let doc = json::parse(
            "{\"version\": 999, \"workspace_hash\": \"0\", \
             \"workspace_findings\": [], \"files\": []}",
        )
        .unwrap();
        assert!(load(&doc).is_none());
    }
}
