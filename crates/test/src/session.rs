//! In-flight test sessions with non-intrusive abort.

use crate::routine::RoutineId;
use manytest_power::VfLevel;
use serde::{Deserialize, Serialize};

/// How a session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionOutcome {
    /// The routine ran to completion; the core's coverage advanced.
    Completed,
    /// The mapper reclaimed the core before the routine finished; no
    /// coverage credit (SBST signatures are only valid for full runs).
    Aborted,
}

/// One SBST routine executing on one core at one V/f level.
///
/// The session tracks instruction progress only; its reserved power lives
/// in the caller's [`manytest_power::PowerBudget`] reservation.
///
/// # Examples
///
/// ```
/// use manytest_sbst::session::TestSession;
/// use manytest_sbst::routine::RoutineId;
/// use manytest_power::VfLevel;
///
/// let mut s = TestSession::new(3, RoutineId(0), VfLevel(2), 100_000, 1.2e9, 0.0);
/// s.advance(0.5e-4);
/// assert!(s.progress() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestSession {
    core: usize,
    routine: RoutineId,
    level: VfLevel,
    total_instructions: u64,
    executed_instructions: f64,
    rate: f64,
    started_at: f64,
}

impl TestSession {
    /// Creates a session for `core` running `routine` at `level`.
    ///
    /// `rate` is the core's execution rate at that level
    /// (`frequency × IPC`, instructions per second); `now` is the start
    /// time in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `total_instructions` is zero or `rate` is not strictly
    /// positive.
    pub fn new(
        core: usize,
        routine: RoutineId,
        level: VfLevel,
        total_instructions: u64,
        rate: f64,
        now: f64,
    ) -> Self {
        assert!(total_instructions > 0, "session needs instructions");
        assert!(rate > 0.0, "execution rate must be positive");
        TestSession {
            core,
            routine,
            level,
            total_instructions,
            executed_instructions: 0.0,
            rate,
            started_at: now,
        }
    }

    /// The core under test.
    pub fn core(&self) -> usize {
        self.core
    }

    /// The routine being run.
    pub fn routine(&self) -> RoutineId {
        self.routine
    }

    /// The V/f level the test runs at.
    pub fn level(&self) -> VfLevel {
        self.level
    }

    /// Instruction execution rate, instructions per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Session start time, seconds.
    pub fn started_at(&self) -> f64 {
        self.started_at
    }

    /// Advances the session by `dt` seconds of execution.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative.
    pub fn advance(&mut self, dt: f64) {
        assert!(dt >= 0.0, "time must advance forwards");
        self.executed_instructions =
            (self.executed_instructions + self.rate * dt).min(self.total_instructions as f64);
    }

    /// Fraction of the routine executed, `[0, 1]`.
    pub fn progress(&self) -> f64 {
        self.executed_instructions / self.total_instructions as f64
    }

    /// True once the full routine has executed.
    pub fn is_complete(&self) -> bool {
        self.executed_instructions >= self.total_instructions as f64
    }

    /// Seconds of execution remaining at the session's rate.
    pub fn remaining_seconds(&self) -> f64 {
        (self.total_instructions as f64 - self.executed_instructions).max(0.0) / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> TestSession {
        TestSession::new(1, RoutineId(2), VfLevel(1), 1_000_000, 2.0e9, 0.5)
    }

    #[test]
    fn fresh_session_state() {
        let s = session();
        assert_eq!(s.core(), 1);
        assert_eq!(s.routine(), RoutineId(2));
        assert_eq!(s.level(), VfLevel(1));
        assert_eq!(s.progress(), 0.0);
        assert!(!s.is_complete());
        assert_eq!(s.started_at(), 0.5);
        assert!((s.remaining_seconds() - 0.5e-3).abs() < 1e-12);
        assert_eq!(s.rate(), 2.0e9);
    }

    #[test]
    fn advance_accumulates_progress() {
        let mut s = session();
        s.advance(0.25e-3); // half the routine at 2 GIPS
        assert!((s.progress() - 0.5).abs() < 1e-9);
        s.advance(0.25e-3);
        assert!(s.is_complete());
        assert_eq!(s.progress(), 1.0);
    }

    #[test]
    fn advance_clamps_at_completion() {
        let mut s = session();
        s.advance(10.0);
        assert_eq!(s.progress(), 1.0);
        assert_eq!(s.remaining_seconds(), 0.0);
    }

    #[test]
    fn zero_advance_is_noop() {
        let mut s = session();
        s.advance(0.0);
        assert_eq!(s.progress(), 0.0);
    }

    #[test]
    #[should_panic(expected = "instructions")]
    fn zero_instructions_panics() {
        TestSession::new(0, RoutineId(0), VfLevel(0), 0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        TestSession::new(0, RoutineId(0), VfLevel(0), 10, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "forwards")]
    fn negative_advance_panics() {
        session().advance(-1.0);
    }

    #[test]
    fn outcome_variants_are_distinct() {
        assert_ne!(SessionOutcome::Completed, SessionOutcome::Aborted);
    }
}
