//! The rule trait, the registry and the individual rules.

use crate::diag::Finding;
use crate::source::{SourceFile, Workspace};

mod event_coverage;
mod event_match;
mod golden_schema;
mod hot_path_purity;
mod nondet_collections;
mod rng_escape;
mod unit_suffix;
mod wall_clock;

pub use event_coverage::enum_variants;
pub use hot_path_purity::ENTRY_POINTS;

/// One static-analysis rule. File rules implement `check_file`;
/// cross-file rules implement `check_workspace` (both default to no-op).
pub trait Rule {
    /// Stable kebab-case id, used in diagnostics and `lint:allow`.
    fn id(&self) -> &'static str;
    /// One-line description for `--rules` and docs.
    fn description(&self) -> &'static str;
    /// Per-file pass.
    fn check_file(&self, _file: &SourceFile, _out: &mut Vec<Finding>) {}
    /// Whole-workspace pass (cross-file facts, non-Rust inputs).
    fn check_workspace(&self, _ws: &Workspace, _out: &mut Vec<Finding>) {}
}

/// Rule ids reserved for the engine's audits (not `Rule` impls — they
/// cannot themselves be allowed).
pub const META_RULES: [&str; 3] = ["unused-allow", "malformed-allow", "malformed-effect"];

/// Every registered rule, in diagnostic order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(nondet_collections::NondetCollections),
        Box::new(wall_clock::WallClock),
        Box::new(hot_path_purity::HotPathPurity),
        Box::new(event_match::EventMatchExhaustiveness),
        Box::new(unit_suffix::UnitSuffixConsistency),
        Box::new(rng_escape::RngEscape),
        Box::new(event_coverage::EventEmissionCoverage),
        Box::new(golden_schema::GoldenSchema),
    ]
}

/// Whether `id` names a registered rule (meta rules excluded — an allow
/// for `unused-allow` would be self-defeating).
pub fn is_known_rule(id: &str) -> bool {
    registry().iter().any(|r| r.id() == id)
}

/// The simulation crates whose state feeds deterministic replay.
pub(crate) const SIM_CRATES: [&str; 9] = [
    "aging", "bench", "core", "map", "noc", "power", "sim", "test", "workload",
];
