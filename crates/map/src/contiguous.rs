//! Contiguous nearest-neighbour task placement.
//!
//! Given a chosen region, both mappers place tasks the same way (the CoNA
//! recipe): the most communication-heavy task goes closest to the region
//! centre, then tasks are placed one at a time in order of how much they
//! talk to the already-placed set, each on the free core that minimises
//! `Σ bits × hops` to its placed partners — plus a caller-supplied per-node
//! penalty, which is where the test-aware strategy differs from the
//! baseline.

use crate::context::MapContext;
use crate::mapping::Mapping;
use manytest_noc::{Coord, Region};
use manytest_workload::{TaskGraph, TaskId};

/// Floor of the per-excess-hop cost for leaving the chosen region (hops
/// beyond the region border are discouraged but not forbidden —
/// fragmentation may force it). The effective cost also scales with the
/// application's mean edge volume so that communication attraction cannot
/// drown the region preference.
const OUTSIDE_REGION_PENALTY_FLOOR: f64 = 1.0e5;

/// Mean communication volume per edge of `app` (1 for edge-less apps);
/// mappers use this to express node penalties in "hops of typical traffic".
pub fn mean_edge_bits(app: &TaskGraph) -> f64 {
    if app.edges().is_empty() {
        1.0
    } else {
        (app.total_bits() / app.edges().len() as f64).max(1.0)
    }
}

/// Orders tasks by descending attachment to the already-placed set, seeded
/// with the most communication-heavy task.
fn placement_order(app: &TaskGraph) -> Vec<TaskId> {
    let n = app.task_count();
    let traffic_of = |t: TaskId| -> f64 {
        app.edges()
            .iter()
            .filter(|e| e.from == t || e.to == t)
            .map(|e| e.bits)
            .sum()
    };
    let mut order: Vec<TaskId> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    // Seed: heaviest communicator (ties: lowest id).
    let seed = (0..n as u32)
        .map(TaskId)
        .max_by(|&a, &b| {
            traffic_of(a)
                .partial_cmp(&traffic_of(b))
                .expect("volumes are finite")
                .then(b.0.cmp(&a.0))
        })
        .expect("graph is non-empty");
    order.push(seed);
    placed[seed.index()] = true;
    while order.len() < n {
        let next = (0..n as u32)
            .map(TaskId)
            .filter(|t| !placed[t.index()])
            .max_by(|&a, &b| {
                let attach = |t: TaskId| -> f64 {
                    app.edges()
                        .iter()
                        .filter(|e| {
                            (e.from == t && placed[e.to.index()])
                                || (e.to == t && placed[e.from.index()])
                        })
                        .map(|e| e.bits)
                        .sum()
                };
                attach(a)
                    .partial_cmp(&attach(b))
                    .expect("volumes are finite")
                    .then(b.0.cmp(&a.0))
            })
            .expect("some task remains");
        order.push(next);
        placed[next.index()] = true;
    }
    order
}

/// Places `app` contiguously inside (preferably) `region`.
///
/// `node_penalty` is added to each candidate core's cost; the baseline
/// passes a constant, the test-aware mapper passes utilisation/criticality
/// pressure. Returns `None` if fewer free cores exist than tasks.
pub fn place(
    ctx: &MapContext,
    region: Region,
    app: &TaskGraph,
    node_penalty: impl Fn(Coord) -> f64,
) -> Option<Mapping> {
    let mesh = ctx.mesh();
    let n = app.task_count();
    if ctx.free_count() < n {
        return None;
    }
    let order = placement_order(app);
    let outside_unit = (10.0 * mean_edge_bits(app)).max(OUTSIDE_REGION_PENALTY_FLOOR);
    let mut slots: Vec<Option<Coord>> = vec![None; n];
    let mut used: Vec<Coord> = Vec::with_capacity(n);
    for (rank, &task) in order.iter().enumerate() {
        let candidate_cost = |c: Coord| -> f64 {
            // Attraction towards placed communication partners.
            let partner_cost: f64 = app
                .edges()
                .iter()
                .filter_map(|e| {
                    let partner = if e.from == task {
                        slots[e.to.index()]
                    } else if e.to == task {
                        slots[e.from.index()]
                    } else {
                        None
                    };
                    partner.map(|p| e.bits * c.manhattan(p) as f64)
                })
                .sum();
            // The first task anchors at the region centre.
            let anchor_cost = if rank == 0 {
                c.manhattan(region.center) as f64
            } else {
                0.0
            };
            let outside = if region.contains(mesh, c) {
                0.0
            } else {
                let excess = region.center.chebyshev(c).saturating_sub(region.radius as u32);
                outside_unit * excess as f64
            };
            partner_cost + anchor_cost + outside + node_penalty(c)
        };
        let chosen = mesh
            .coords()
            .filter(|&c| ctx.is_free(c) && !used.contains(&c))
            .min_by(|&a, &b| {
                candidate_cost(a)
                    .partial_cmp(&candidate_cost(b))
                    .expect("costs are finite")
                    .then(mesh.node_id(a).cmp(&mesh.node_id(b)))
            })?;
        slots[task.index()] = Some(chosen);
        used.push(chosen);
    }
    let coords: Vec<Coord> = slots
        .into_iter()
        .map(|s| s.expect("every task placed"))
        .collect();
    Some(Mapping::new(coords))
}

#[cfg(test)]
mod tests {
    use super::*;
    use manytest_noc::Mesh2D;
    use manytest_workload::{presets, Task};

    fn chain(n: usize) -> TaskGraph {
        let mut g = TaskGraph::new("chain");
        let ids: Vec<TaskId> = (0..n)
            .map(|_| g.add_task(Task { instructions: 1 }))
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], 100.0);
        }
        g
    }

    fn full_region(mesh: Mesh2D) -> Region {
        Region::new(
            Coord::new(mesh.width() / 2, mesh.height() / 2),
            mesh.width().max(mesh.height()),
        )
    }

    #[test]
    fn chain_maps_with_adjacent_neighbors() {
        let mesh = Mesh2D::new(8, 8);
        let ctx = MapContext::all_free(mesh);
        let app = chain(4);
        let m = place(&ctx, Region::new(Coord::new(3, 3), 1), &app, |_| 0.0).unwrap();
        assert!(m.is_valid_for(mesh, &app));
        // Nearest-neighbour placement should keep chain hops minimal.
        assert!(m.mean_hop_distance(&app) <= 1.5, "{}", m.mean_hop_distance(&app));
    }

    #[test]
    fn placement_stays_in_region_when_possible() {
        let mesh = Mesh2D::new(8, 8);
        let ctx = MapContext::all_free(mesh);
        let app = presets::pip(); // 8 tasks fit a radius-1..2 region
        let region = Region::new(Coord::new(4, 4), 2);
        let m = place(&ctx, region, &app, |_| 0.0).unwrap();
        for &c in m.coords() {
            assert!(region.contains(mesh, c), "{c} escaped the region");
        }
    }

    #[test]
    fn placement_escapes_region_under_fragmentation() {
        let mesh = Mesh2D::new(4, 4);
        let mut ctx = MapContext::all_free(mesh);
        // Occupy everything except the four corners.
        for c in mesh.coords() {
            let corner = (c.x == 0 || c.x == 3) && (c.y == 0 || c.y == 3);
            ctx.set_free(c, corner);
        }
        let app = chain(4);
        let m = place(&ctx, Region::new(Coord::new(0, 0), 0), &app, |_| 0.0).unwrap();
        assert!(m.is_valid_for(mesh, &app));
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn insufficient_free_cores_returns_none() {
        let mesh = Mesh2D::new(2, 2);
        let mut ctx = MapContext::all_free(mesh);
        ctx.set_free(Coord::new(0, 0), false);
        ctx.set_free(Coord::new(1, 0), false);
        let app = chain(3);
        assert!(place(&ctx, full_region(mesh), &app, |_| 0.0).is_none());
    }

    #[test]
    fn node_penalty_steers_placement() {
        let mesh = Mesh2D::new(6, 1);
        let ctx = MapContext::all_free(mesh);
        let mut g = TaskGraph::new("solo");
        g.add_task(Task { instructions: 1 });
        // Huge penalty everywhere except x == 5.
        let m = place(&ctx, Region::new(Coord::new(0, 0), 6), &g, |c| {
            if c.x == 5 {
                0.0
            } else {
                1.0e9
            }
        })
        .unwrap();
        assert_eq!(m.coord_of(TaskId(0)), Coord::new(5, 0));
    }

    #[test]
    fn placement_order_starts_with_heaviest() {
        let g = presets::mpeg4();
        let order = placement_order(&g);
        // Task 3 (the SDRAM hub) carries the most traffic in mpeg4.
        assert_eq!(order[0], TaskId(3));
        assert_eq!(order.len(), g.task_count());
        // Order is a permutation.
        let mut sorted: Vec<u32> = order.iter().map(|t| t.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..g.task_count() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn contiguity_beats_random_scatter_on_hop_cost() {
        let mesh = Mesh2D::new(8, 8);
        let ctx = MapContext::all_free(mesh);
        let app = presets::vopd();
        let m = place(&ctx, Region::new(Coord::new(4, 4), 2), &app, |_| 0.0).unwrap();
        // Scatter: spread 12 tasks over a coarse lattice — legal but
        // dispersed.
        let scatter = Mapping::new(
            (0..app.task_count())
                .map(|i| Coord::new((i % 4 * 2) as u16, (i / 4 * 3) as u16))
                .collect(),
        );
        assert!(m.weighted_hop_cost(&app) < scatter.weighted_hop_cost(&app));
    }

    #[test]
    fn deterministic_under_same_inputs() {
        let mesh = Mesh2D::new(8, 8);
        let ctx = MapContext::all_free(mesh);
        let app = presets::mwd();
        let r = Region::new(Coord::new(4, 4), 2);
        let a = place(&ctx, r, &app, |_| 0.0).unwrap();
        let b = place(&ctx, r, &app, |_| 0.0).unwrap();
        assert_eq!(a, b);
    }
}
