//! Full system configuration.

use manytest_aging::{AgingModel, CriticalityModel};
use manytest_power::TechNode;
use manytest_sbst::TestSchedulerConfig;
use manytest_sim::Duration;
use serde::{Deserialize, Serialize};

/// Which power governor drives the admission cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GovernorKind {
    /// The ICCD'14 PID controller (the paper's setting).
    Pid,
    /// The naive bang-bang TDP policy (baseline).
    Naive,
    /// A fixed cap at exactly the TDP (no feedback).
    FixedTdp,
}

/// Which runtime mapper places applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MapperKind {
    /// Utilisation/test-agnostic contiguous mapping (CoNA-style baseline).
    Baseline,
    /// The paper's test-aware utilisation-oriented mapping.
    TestAware,
    /// Naive non-contiguous first-fit (lower-bound comparator).
    FirstFit,
}

/// What happens to an application whose core is quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultResponsePolicy {
    /// Detection-only: the core keeps executing (the pre-response
    /// behaviour, and the corruption-exposure worst case).
    Ignore,
    /// Kill the victim application outright; its work is lost.
    Abort,
    /// Tear the victim down and re-queue it for a fresh contiguous
    /// placement on healthy cores, restarting from its first task.
    RestartElsewhere,
    /// Remap the victim in place: surviving tasks keep their progress,
    /// displaced tasks move to healthy cores, and the state transfer is
    /// charged as a delay plus NoC traffic.
    MigrateRegion,
}

impl FaultResponsePolicy {
    /// Stable lowercase name for tables and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultResponsePolicy::Ignore => "ignore",
            FaultResponsePolicy::Abort => "abort",
            FaultResponsePolicy::RestartElsewhere => "restart",
            FaultResponsePolicy::MigrateRegion => "migrate",
        }
    }
}

impl std::fmt::Display for FaultResponsePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Everything a [`crate::System`] needs to run.
///
/// Construct through [`crate::SystemBuilder`]; the fields are public so
/// experiment harnesses can record exactly what they ran.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Technology node (fixes mesh size, power params, TDP).
    pub node: TechNode,
    /// Control epoch length.
    pub epoch: Duration,
    /// Total simulated time.
    pub horizon: Duration,
    /// RNG seed for the whole run.
    pub seed: u64,
    /// Mean application arrival rate, apps/second.
    pub arrival_rate: f64,
    /// Deterministic evenly-spaced arrivals instead of Poisson.
    pub periodic_arrivals: bool,
    /// Number of DVFS levels in the ladder.
    pub dvfs_levels: usize,
    /// Instructions per cycle of workload code.
    pub workload_ipc: f64,
    /// Online testing enabled at all (off = the "no test" baseline).
    pub testing_enabled: bool,
    /// Test scheduler tuning.
    pub test_scheduler: TestSchedulerConfig,
    /// Governor choice.
    pub governor: GovernorKind,
    /// Mapper choice.
    pub mapper: MapperKind,
    /// Aging model parameters.
    pub aging: AgingModel,
    /// Criticality metric parameters.
    pub criticality: CriticalityModel,
    /// Number of latent faults to inject, spread uniformly over the first
    /// half of the run (0 = none).
    pub injected_faults: usize,
    /// Time to restore architectural state when a task preempts an SBST
    /// session on its core (the cost of non-intrusive abort).
    pub abort_overhead: Duration,
    /// Fraction of injected faults that are voltage dependent (observable
    /// at exactly one DVFS level), in `[0, 1]`. Such faults are only
    /// caught because the scheduler rotates tests through the ladder.
    pub vf_windowed_fault_fraction: f64,
    /// What happens to applications on a quarantined core.
    pub fault_response: FaultResponsePolicy,
    /// Confirmation retests (K) a detection must survive before the core
    /// is quarantined; 0 disables confirmation (first detection
    /// quarantines immediately). Any retest that reproduces the symptom
    /// confirms; K retests with no reproduction clear the core.
    pub confirmation_retests: u8,
    /// Fraction of injected faults that are *intermittent* — they
    /// manifest on any given observation with reduced probability, so
    /// confirmation retests may clear them (and quarantine them late).
    pub intermittent_fault_fraction: f64,
    /// Fraction of the horizon after which an intermittent fault *cools*
    /// (stops refiring), measured from its injection time. Cooled faults
    /// no longer corrupt work or fail probes, so the re-admission lane
    /// can recover their cores. Zero (the default) means intermittents
    /// never cool — the historical behaviour.
    pub intermittent_cooldown_fraction: f64,
    /// Per-completed-test probability of reporting a fault on a healthy
    /// core (applied to every routine in the library). Exercises the
    /// suspect→cleared path.
    pub test_false_positive_rate: f64,
    /// Architectural-state transfer time charged per *checkpoint image*
    /// of each moved task under [`FaultResponsePolicy::MigrateRegion`].
    /// The actual per-task charge scales with the dirty span since the
    /// task's last checkpoint (see [`SystemConfig::checkpoint_interval`]).
    pub migration_delay: Duration,
    /// Cadence at which running applications checkpoint their task state
    /// under [`FaultResponsePolicy::MigrateRegion`]. Each checkpoint
    /// pauses the app's tasks briefly (the image write) but caps the
    /// dirty state a later migration must transfer and replay. Zero
    /// disables checkpointing: migrations then transfer the full state
    /// accumulated since mapping.
    pub checkpoint_interval: Duration,
    /// Cadence of the background re-admission lane: how often a
    /// quarantined core is probed with a cheap low-V/f routine (`None` =
    /// lane off, quarantine terminal — the historical behaviour). The
    /// effective per-core cadence is multiplied by `2^backoff` after each
    /// failed probation round.
    pub probe_cadence: Option<Duration>,
    /// Clean probes in a row required to re-admit a quarantined core.
    pub probe_passes: u8,
    /// Maximum probe sessions in flight at once (the lane budget).
    pub probe_budget: u32,
    /// Cap on the probation-retry backoff exponent (the cadence
    /// multiplier saturates at `2^cap`).
    pub probe_backoff_cap: u8,
    /// Mesh edge override (None = the node's edge at reference area).
    pub mesh_edge_override: Option<u16>,
    /// Model NoC link contention: message latencies are inflated by a
    /// queueing-delay factor based on the previous epoch's link loads.
    pub model_contention: bool,
    /// Use the transient RC thermal grid instead of the steady-state
    /// proxy to drive the aging model (slower, physically richer).
    pub transient_thermal: bool,
    /// Ablation switch: when true, a ready task **waits** for the session
    /// on its core to finish instead of aborting it. The paper's scheduler
    /// is non-intrusive (false); intrusive mode quantifies what that
    /// property is worth.
    pub intrusive_testing: bool,
    /// Cap on samples stored per trace series; once full a series halves
    /// itself and doubles its sampling stride (`None` = keep every epoch
    /// sample, the historical behaviour).
    pub trace_max_samples: Option<usize>,
    /// Capture decision telemetry: keep up to this many structured events
    /// in an in-memory log returned on the report (`None` = no capture;
    /// the control loop then runs with the zero-cost null observer).
    pub event_capacity: Option<usize>,
    /// Flight recorder: keep up to this many per-epoch state snapshots
    /// in a bounded ring returned on the report, decimated with the same
    /// stride-doubling scheme as bounded traces (`None` = no recording).
    pub state_snapshot_max: Option<usize>,
}

impl SystemConfig {
    /// The evaluation's default configuration for `node`: 1 ms epochs,
    /// 500 ms horizon, PID governor, test-aware mapper, testing on.
    pub fn for_node(node: TechNode) -> Self {
        SystemConfig {
            node,
            epoch: Duration::from_ms(1),
            horizon: Duration::from_ms(500),
            seed: 1,
            arrival_rate: 200.0,
            periodic_arrivals: false,
            dvfs_levels: 5,
            workload_ipc: 1.0,
            testing_enabled: true,
            test_scheduler: TestSchedulerConfig::default(),
            governor: GovernorKind::Pid,
            mapper: MapperKind::TestAware,
            aging: AgingModel::default(),
            criticality: CriticalityModel::default(),
            injected_faults: 0,
            vf_windowed_fault_fraction: 0.0,
            fault_response: FaultResponsePolicy::RestartElsewhere,
            confirmation_retests: 3,
            intermittent_fault_fraction: 0.0,
            intermittent_cooldown_fraction: 0.0,
            test_false_positive_rate: 0.0,
            migration_delay: Duration::from_us(200),
            checkpoint_interval: Duration::from_ms(10),
            probe_cadence: None,
            probe_passes: 3,
            probe_budget: 2,
            probe_backoff_cap: 4,
            mesh_edge_override: None,
            model_contention: false,
            transient_thermal: false,
            abort_overhead: Duration::from_us(50),
            intrusive_testing: false,
            trace_max_samples: None,
            event_capacity: None,
            state_snapshot_max: None,
        }
    }

    /// Number of control epochs the horizon covers.
    pub fn epoch_count(&self) -> u64 {
        self.horizon.as_ns() / self.epoch.as_ns().max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = SystemConfig::for_node(TechNode::N16);
        assert_eq!(c.node, TechNode::N16);
        assert!(c.testing_enabled);
        assert_eq!(c.governor, GovernorKind::Pid);
        assert_eq!(c.mapper, MapperKind::TestAware);
        assert_eq!(c.epoch_count(), 500);
    }

    #[test]
    fn epoch_count_rounds_down() {
        let mut c = SystemConfig::for_node(TechNode::N45);
        c.horizon = Duration::from_us(2_500);
        c.epoch = Duration::from_ms(1);
        assert_eq!(c.epoch_count(), 2);
    }

    #[test]
    fn kinds_are_comparable() {
        assert_ne!(GovernorKind::Pid, GovernorKind::Naive);
        assert_ne!(MapperKind::Baseline, MapperKind::TestAware);
        assert_ne!(FaultResponsePolicy::Abort, FaultResponsePolicy::MigrateRegion);
    }

    #[test]
    fn fault_response_names_are_stable() {
        for (p, s) in [
            (FaultResponsePolicy::Ignore, "ignore"),
            (FaultResponsePolicy::Abort, "abort"),
            (FaultResponsePolicy::RestartElsewhere, "restart"),
            (FaultResponsePolicy::MigrateRegion, "migrate"),
        ] {
            assert_eq!(p.as_str(), s);
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn debug_exposes_all_fields() {
        let c = SystemConfig::for_node(TechNode::N22);
        let dbg = format!("{c:?}");
        assert!(dbg.contains("N22"));
        assert!(dbg.contains("arrival_rate"));
        assert!(dbg.contains("testing_enabled"));
    }
}
