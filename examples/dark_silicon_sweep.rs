//! Technology sweep: how the dark-silicon fraction grows from 45 nm to
//! 16 nm at fixed die area and TDP, and what online testing costs in
//! throughput at each node (the paper's headline claim: < 1 % at 16 nm).
//!
//! ```sh
//! cargo run --example dark_silicon_sweep --release
//! ```

use manytest::prelude::*;

fn main() -> Result<(), BuildError> {
    println!("node   cores  TDP    peak-demand  dark   penalty  test-energy");
    println!("-----  -----  -----  -----------  -----  -------  -----------");
    for node in TechNode::ALL {
        let run = |testing: bool| -> Result<Report, BuildError> {
            Ok(SystemBuilder::new(node)
                .seed(7)
                .arrival_rate(250.0)
                .sim_time_ms(200)
                .testing(testing)
                .build()?
                .run())
        };
        let baseline = run(false)?;
        let tested = run(true)?;
        let penalty = tested.throughput_penalty_vs(&baseline);
        println!(
            "{:<5}  {:>5}  {:>4.0}W  {:>10.1}W  {:>4.0}%  {:>6.2}%  {:>10.2}%",
            node.to_string(),
            node.core_count(),
            node.params().tdp,
            node.peak_power_all_cores(),
            node.dark_silicon_fraction() * 100.0,
            penalty * 100.0,
            tested.test_energy_share * 100.0,
        );
    }
    println!();
    println!(
        "Reading: the dark fraction grows monotonically towards 16 nm, while the\n\
         throughput penalty of online testing shrinks — scaled nodes have more\n\
         temporarily-free cores and more power headroom for the scheduler to spend."
    );
    Ok(())
}
