//! Intra-workspace call-graph construction over the symbol table.
//!
//! Resolution is name-based (no type inference), tiered to keep the
//! false-edge rate low:
//!
//! * `self.foo(…)` resolves to methods named `foo` on the *enclosing*
//!   `impl` type (across all of that type's impl blocks);
//! * `Type::foo(…)` resolves to `foo` methods of `Type`;
//! * bare `foo(…)` resolves to free functions named `foo`, preferring
//!   the same crate;
//! * `.foo(…)` on any other receiver resolves to the union of all
//!   same-named methods in the workspace — deliberately conservative,
//!   since an over-approximated edge at worst asks for an audited
//!   `lint:effect` annotation, while a missed edge silently breaks the
//!   hot-path guarantee.
//!
//! Call sites that resolve to nothing in the workspace are still
//! recorded: the effect pass classifies them against the std sink
//! tables (`Box::new`, `Mutex::lock`, `format!`, …).

use crate::lexer::{Token, TokenKind};
use crate::source::Workspace;
use crate::symbols::{FnSym, SymbolTable};

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// `foo(…)` — a free-function call.
    Bare,
    /// `self.foo(…)` — a method call on the enclosing type.
    SelfMethod,
    /// `expr.foo(…)` — a method call on some other receiver.
    Method,
    /// `Owner::foo(…)` — a qualified call; the path segment before the
    /// final `::`.
    Qualified(String),
    /// `foo!(…)` / `foo![…]` / `foo!{…}` — a macro invocation.
    Macro,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index of the calling fn in the symbol table.
    pub caller: usize,
    /// Callee name (fn, method or macro name).
    pub name: String,
    pub recv: Recv,
    pub line: u32,
    pub col: u32,
    /// Workspace fns this site may dispatch to (empty for externals).
    pub targets: Vec<usize>,
}

/// The workspace call graph: all sites, plus a per-fn site index.
pub struct CallGraph {
    pub sites: Vec<CallSite>,
    /// `sites_of[fn_index]` → indices into `sites`.
    pub sites_of: Vec<Vec<usize>>,
}

impl CallGraph {
    pub fn build(ws: &Workspace, table: &SymbolTable) -> CallGraph {
        let mut sites = Vec::new();
        let mut sites_of = vec![Vec::new(); table.fns.len()];
        for (fi, f) in table.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let Some((body_start, body_end)) = f.body else {
                continue;
            };
            let file = &ws.files[f.file];
            let code: Vec<&Token> = file.code_tokens().collect();
            // Token ranges of *other* fns nested inside this body are
            // their own nodes — exclude them so a nested helper's sinks
            // are not double-attributed to the outer fn.
            let nested: Vec<(usize, usize)> = table
                .fns
                .iter()
                .filter(|g| g.file == f.file)
                .filter_map(|g| g.body)
                .filter(|&(s, e)| s > body_start && e <= body_end)
                .collect();
            let mut i = body_start;
            while i <= body_end.min(code.len().saturating_sub(1)) {
                if let Some(&(_, ne)) = nested.iter().find(|&&(ns, ne)| i >= ns && i <= ne) {
                    i = ne + 1;
                    continue;
                }
                if let Some(site) = call_at(&code, i, fi, table, f) {
                    let idx = sites.len();
                    sites_of[fi].push(idx);
                    sites.push(site);
                }
                i += 1;
            }
        }
        CallGraph { sites, sites_of }
    }
}

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: [&str; 10] = [
    "if", "match", "while", "for", "loop", "return", "in", "as", "let", "else",
];

/// Recognises a call whose callee name sits at code-token `i`.
fn call_at(
    code: &[&Token],
    i: usize,
    caller: usize,
    table: &SymbolTable,
    caller_sym: &FnSym,
) -> Option<CallSite> {
    let t = code[i];
    if t.kind != TokenKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
        return None;
    }
    // The ident right after `fn` is a definition, not a call.
    if i > 0 && code[i - 1].is_ident("fn") {
        return None;
    }
    let next = code.get(i + 1)?;
    // Macro invocation: `name!(…)` / `name![…]` / `name!{…}`.
    if next.is_punct('!')
        && code
            .get(i + 2)
            .is_some_and(|d| d.is_punct('(') || d.is_punct('[') || d.is_punct('{'))
    {
        return Some(CallSite {
            caller,
            name: t.text.clone(),
            recv: Recv::Macro,
            line: t.line,
            col: t.col,
            targets: Vec::new(),
        });
    }
    // `name(` or turbofish `name::<T>(`.
    let opens_call = next.is_punct('(')
        || (next.is_punct(':')
            && code.get(i + 2).is_some_and(|c| c.is_punct(':'))
            && code.get(i + 3).is_some_and(|c| c.is_punct('<'))
            && turbofish_then_paren(code, i + 3));
    if !opens_call {
        return None;
    }
    let recv = receiver_of(code, i);
    let targets = resolve(&recv, &t.text, table, caller_sym);
    Some(CallSite {
        caller,
        name: t.text.clone(),
        recv,
        line: t.line,
        col: t.col,
        targets,
    })
}

/// Whether the `<` at `open` closes into a `(` (turbofish call).
fn turbofish_then_paren(code: &[&Token], open: usize) -> bool {
    let mut depth = 0i32;
    let mut i = open;
    while i < code.len() && i < open + 64 {
        if code[i].is_punct('<') {
            depth += 1;
        } else if code[i].is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return code.get(i + 1).is_some_and(|t| t.is_punct('('));
            }
        }
        i += 1;
    }
    false
}

/// Classifies the receiver of the call whose name is at `i`.
fn receiver_of(code: &[&Token], i: usize) -> Recv {
    if i == 0 {
        return Recv::Bare;
    }
    let prev = code[i - 1];
    if prev.is_punct('.') {
        if i >= 2 && code[i - 2].is_ident("self") {
            // Only a direct `self.foo(` — `self.field.foo(` is a call
            // on the field, not on Self.
            let self_is_base = i < 3 || !code[i - 3].is_punct('.');
            if self_is_base {
                return Recv::SelfMethod;
            }
        }
        return Recv::Method;
    }
    if prev.is_punct(':') && i >= 2 && code[i - 2].is_punct(':') {
        // Walk back over `::`-separated segments to the path head is
        // unnecessary — the sink tables and symbol owners key on the
        // segment immediately before the final `::`.
        if i >= 3 && code[i - 3].kind == TokenKind::Ident {
            return Recv::Qualified(code[i - 3].text.clone());
        }
        // `<T as Trait>::foo(` and `::foo(` fall back to Bare-like.
        return Recv::Qualified(String::new());
    }
    Recv::Bare
}

/// Resolves a site to candidate workspace fns (tiered, same-crate
/// preferred when ambiguous).
fn resolve(recv: &Recv, name: &str, table: &SymbolTable, caller_sym: &FnSym) -> Vec<usize> {
    let candidates: Vec<usize> = match recv {
        Recv::Macro => Vec::new(),
        Recv::SelfMethod => {
            let owned: Vec<usize> = caller_sym
                .owner
                .as_deref()
                .map(|o| table.methods_of(o, name).collect())
                .unwrap_or_default();
            if owned.is_empty() {
                // Trait default methods or impl blocks the heuristic
                // missed: fall back to any method of that name.
                table.methods_named(name).collect()
            } else {
                owned
            }
        }
        Recv::Qualified(owner) if owner == "Self" => {
            // `Self::helper(…)` — same resolution as `self.helper(…)`.
            let owned: Vec<usize> = caller_sym
                .owner
                .as_deref()
                .map(|o| table.methods_of(o, name).collect())
                .unwrap_or_default();
            if owned.is_empty() {
                table.methods_named(name).collect()
            } else {
                owned
            }
        }
        Recv::Qualified(owner) if !owner.is_empty() => {
            let owned: Vec<usize> = table.methods_of(owner, name).collect();
            if owned.is_empty() && owner.chars().next().is_some_and(char::is_lowercase) {
                // `module::free_fn(…)` — the segment was a module path,
                // not a type.
                table.free_fns_named(name).collect()
            } else {
                owned
            }
        }
        Recv::Qualified(_) => table.free_fns_named(name).collect(),
        Recv::Method => table.methods_named(name).collect(),
        Recv::Bare => table.free_fns_named(name).collect(),
    };
    // Never resolve into test code, and prefer same-crate candidates
    // when any exist (duplicate names across crates are common).
    let candidates: Vec<usize> = candidates
        .into_iter()
        .filter(|&c| !table.fns[c].is_test)
        .collect();
    let same_file_crate: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&c| table.fns[c].file == caller_sym.file)
        .collect();
    if matches!(recv, Recv::Bare) && !same_file_crate.is_empty() {
        return same_file_crate;
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::Path;

    fn graph(src: &str) -> (Workspace, SymbolTable, CallGraph) {
        let ws = Workspace::from_sources(
            Path::new("/x"),
            vec![SourceFile::from_source("crates/core/src/a.rs", src)],
        );
        let table = SymbolTable::build(&ws);
        let cg = CallGraph::build(&ws, &table);
        (ws, table, cg)
    }

    fn callee_names(table: &SymbolTable, site: &CallSite) -> Vec<String> {
        site.targets.iter().map(|&t| table.fns[t].name.clone()).collect()
    }

    #[test]
    fn self_calls_resolve_to_the_enclosing_type_across_impl_blocks() {
        let (_, table, cg) = graph(
            "impl Sys {\n    fn a(&self) { self.b(); }\n}\n\
             impl Sys {\n    fn b(&self) {}\n}\n\
             impl Other {\n    fn b(&self) {}\n}\n",
        );
        let site = &cg.sites[0];
        assert_eq!(site.recv, Recv::SelfMethod);
        assert_eq!(site.targets.len(), 1);
        assert_eq!(table.fns[site.targets[0]].owner.as_deref(), Some("Sys"));
    }

    #[test]
    fn field_method_calls_do_not_pretend_to_be_self_calls() {
        let (_, _, cg) = graph(
            "impl Sys {\n    fn a(&self) { self.store.push_back(1); }\n}\n",
        );
        assert_eq!(cg.sites[0].recv, Recv::Method);
        assert_eq!(cg.sites[0].name, "push_back");
    }

    #[test]
    fn qualified_bare_and_macro_sites_are_classified() {
        let (_, table, cg) = graph(
            "fn helper() {}\n\
             fn top() {\n    helper();\n    Box::new(1);\n    format!(\"x\");\n    Cfg::load();\n}\n\
             impl Cfg {\n    fn load() {}\n}\n",
        );
        let top = table.fns.iter().position(|f| f.name == "top").unwrap();
        let kinds: Vec<(String, Recv, Vec<String>)> = cg.sites_of[top]
            .iter()
            .map(|&s| {
                let site = &cg.sites[s];
                (site.name.clone(), site.recv.clone(), callee_names(&table, site))
            })
            .collect();
        assert_eq!(kinds[0], ("helper".into(), Recv::Bare, vec!["helper".into()]));
        assert_eq!(kinds[1].1, Recv::Qualified("Box".into()));
        assert!(kinds[1].2.is_empty(), "Box::new is external");
        assert_eq!(kinds[2].1, Recv::Macro);
        assert_eq!(kinds[3], (
            "load".into(),
            Recv::Qualified("Cfg".into()),
            vec!["load".into()]
        ));
    }

    #[test]
    fn nested_fn_bodies_are_not_attributed_to_the_outer_fn() {
        let (_, table, cg) = graph(
            "fn outer() {\n    fn inner() { Box::new(1); }\n    inner();\n}\n",
        );
        let outer = table.fns.iter().position(|f| f.name == "outer").unwrap();
        let inner = table.fns.iter().position(|f| f.name == "inner").unwrap();
        let outer_names: Vec<&str> = cg.sites_of[outer]
            .iter()
            .map(|&s| cg.sites[s].name.as_str())
            .collect();
        assert_eq!(outer_names, vec!["inner"], "outer sees only the call, not inner's body");
        assert_eq!(cg.sites_of[inner].len(), 1);
        assert_eq!(cg.sites[cg.sites_of[inner][0]].name, "new");
    }

    #[test]
    fn test_code_is_excluded_from_the_graph() {
        let (_, table, cg) = graph(
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { super::prod(); }\n}\n",
        );
        let t = table.fns.iter().position(|f| f.name == "t").unwrap();
        assert!(cg.sites_of[t].is_empty());
    }
}
