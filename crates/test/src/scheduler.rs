//! The power-aware online test scheduler.
//!
//! Every control epoch the simulator hands the scheduler the set of *idle*
//! cores (with their criticalities) and the chip's current power headroom;
//! the scheduler decides which cores start an SBST session, at which V/f
//! level and with which routine. Three rules, straight from the paper:
//!
//! 1. **Non-intrusive** — only idle cores are candidates; a session is
//!    aborted if the mapper reclaims the core (handled by the caller via
//!    [`crate::session::SessionOutcome::Aborted`]).
//! 2. **Power-aware** — sessions launch only while their projected power
//!    fits the headroom left under the (PID-governed) budget; candidates
//!    are served in descending criticality so the available watts go to
//!    the cores that need testing most.
//! 3. **Rotating coverage** — each core cycles through the routine library
//!    and, per completed routine, through the DVFS ladder (least-tested
//!    level first), so over time every core is tested at every level.

use crate::coverage::VfCoverageLedger;
use crate::routine::{RoutineId, RoutineLibrary};
use manytest_power::{PowerModel, TechNode, VfLadder, VfLevel};
use serde::{Deserialize, Serialize};

/// An idle core offered to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestCandidate {
    /// Dense core index.
    pub core: usize,
    /// Current test criticality (see [`manytest_aging`]).
    pub criticality: f64,
}

/// A priority confirmation retest ordered by the health state machine: a
/// core in `Suspect` must re-run a test *at the level the detection
/// happened at* before any routine testing is considered. Retests bypass
/// the criticality threshold — the whole point is to resolve the suspect
/// verdict quickly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetestRequest {
    /// The suspect core.
    pub core: usize,
    /// DVFS level the original detection happened at.
    pub level: VfLevel,
}

/// A decision to start one test session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestLaunch {
    /// Core to test.
    pub core: usize,
    /// Routine to run.
    pub routine: RoutineId,
    /// DVFS level to test at.
    pub level: VfLevel,
    /// Projected power draw of the session, watts.
    pub power: f64,
    /// Execution rate at the chosen level, instructions/second.
    pub rate: f64,
    /// Routine length, instructions.
    pub instructions: u64,
}

impl TestLaunch {
    /// Projected session duration, seconds.
    pub fn duration(&self) -> f64 {
        self.instructions as f64 / self.rate
    }
}

/// A decision *not* to start a session for lack of power, with the
/// headroom at the instant of the denial — the telemetry record behind
/// [`TestScheduler::denied_for_power`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestDenial {
    /// Core that wanted a test.
    pub core: usize,
    /// Level the session would have run at.
    pub level: VfLevel,
    /// Watts the session would have needed.
    pub power: f64,
    /// Watts that were actually left when the denial happened.
    pub headroom: f64,
}

/// Scheduler tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestSchedulerConfig {
    /// Minimum criticality before a core is worth testing. Zero means
    /// "test any idle core whenever power allows".
    pub criticality_threshold: f64,
    /// Upper bound on sessions started per planning call.
    pub max_launches_per_epoch: usize,
    /// Instructions per cycle of SBST code (test code is branchy; < 1).
    pub ipc: f64,
    /// Number of DVFS levels in the test ladder.
    pub ladder_levels: usize,
    /// Ablation switch: test only at this fixed level instead of rotating
    /// through the ladder. `None` (default) = rotate — the paper's policy.
    pub fixed_level: Option<u8>,
}

impl Default for TestSchedulerConfig {
    fn default() -> Self {
        TestSchedulerConfig {
            criticality_threshold: 0.5,
            max_launches_per_epoch: 64,
            ipc: 0.8,
            ladder_levels: 5,
            fixed_level: None,
        }
    }
}

/// The power-aware online test scheduler (see module docs).
///
/// # Examples
///
/// ```
/// use manytest_sbst::prelude::*;
/// use manytest_power::TechNode;
///
/// let mut sched = TestScheduler::new(TestSchedulerConfig::default(), TechNode::N16);
/// let candidates = [TestCandidate { core: 7, criticality: 3.0 }];
/// let launches = sched.plan(&candidates, 5.0);
/// assert_eq!(launches.len(), 1);
/// let l = launches[0];
/// sched.on_session_complete(l.core, l.routine, l.level);
/// assert_eq!(sched.ledger().tests_on_core(7), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestScheduler {
    config: TestSchedulerConfig,
    model: PowerModel,
    ladder: VfLadder,
    library: RoutineLibrary,
    cursors: Vec<RoutineId>,
    ledger: VfCoverageLedger,
    launches_attempted: u64,
    launches_denied_power: u64,
    /// Ranked-lane heap pops over the scheduler's lifetime (the lazy
    /// partial selection pops one rank per candidate considered).
    heap_pops: u64,
    /// Reused ranking buffer for [`TestScheduler::plan_into`]; always
    /// empty between calls (so equality/serialisation see no difference).
    rank_scratch: Vec<TestCandidate>,
}

impl TestScheduler {
    /// Creates a scheduler for all cores of `node` with the standard
    /// routine library.
    pub fn new(config: TestSchedulerConfig, node: TechNode) -> Self {
        Self::with_library(config, node, RoutineLibrary::standard(), node.core_count())
    }

    /// Creates a scheduler with an explicit library and core count.
    ///
    /// # Panics
    ///
    /// Panics if `core_count` is zero or the config is inconsistent
    /// (`ipc <= 0`, fewer than two ladder levels).
    pub fn with_library(
        config: TestSchedulerConfig,
        node: TechNode,
        library: RoutineLibrary,
        core_count: usize,
    ) -> Self {
        assert!(core_count > 0, "need at least one core");
        assert!(config.ipc > 0.0, "IPC must be positive");
        assert!(config.ladder_levels >= 2, "need at least two DVFS levels");
        if let Some(level) = config.fixed_level {
            assert!(
                (level as usize) < config.ladder_levels,
                "fixed level outside the ladder"
            );
        }
        TestScheduler {
            config,
            model: PowerModel::for_node(node),
            ladder: VfLadder::for_node(node, config.ladder_levels),
            library,
            cursors: vec![RoutineId(0); core_count],
            ledger: VfCoverageLedger::new(core_count, config.ladder_levels),
            launches_attempted: 0,
            launches_denied_power: 0,
            heap_pops: 0,
            rank_scratch: Vec::new(),
        }
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &TestSchedulerConfig {
        &self.config
    }

    /// The coverage ledger (per core × V/f level).
    pub fn ledger(&self) -> &VfCoverageLedger {
        &self.ledger
    }

    /// The routine library in use.
    pub fn library(&self) -> &RoutineLibrary {
        &self.library
    }

    /// The DVFS ladder tests are scheduled over.
    pub fn ladder(&self) -> &VfLadder {
        &self.ladder
    }

    /// Projected power of testing at `level` with routine `routine`.
    pub fn session_power(&self, routine: RoutineId, level: VfLevel) -> f64 {
        let op = self.ladder.point(level);
        self.model.core_power(op, self.library.routine(routine).activity)
    }

    /// Plans this epoch's launches: candidates above the criticality
    /// threshold, most critical first, greedily admitted while their
    /// projected power fits `headroom_watts`.
    pub fn plan(&mut self, candidates: &[TestCandidate], headroom_watts: f64) -> Vec<TestLaunch> {
        let mut launches = Vec::new();
        let mut denials = Vec::new();
        self.plan_into(candidates, headroom_watts, &mut launches, &mut denials);
        launches
    }

    /// Allocation-reusing form of [`TestScheduler::plan`]: clears and
    /// fills caller-owned buffers with this epoch's launches *and* the
    /// power denials (core, level, needed watts, headroom at denial), so
    /// the control loop can both act and emit telemetry without building
    /// fresh vectors every epoch.
    pub fn plan_into(
        &mut self,
        candidates: &[TestCandidate],
        headroom_watts: f64,
        launches: &mut Vec<TestLaunch>,
        denials: &mut Vec<TestDenial>,
    ) {
        self.plan_with_retests_into(&[], candidates, headroom_watts, launches, denials);
    }

    /// [`TestScheduler::plan_into`] with a priority lane: every
    /// [`RetestRequest`] is served *before* any ranked candidate, pinned
    /// to the level the detection happened at and exempt from the
    /// criticality threshold. Retests still compete for the same headroom
    /// and count against `max_launches_per_epoch` — confirmation is
    /// urgent, not free.
    pub fn plan_with_retests_into(
        &mut self,
        retests: &[RetestRequest],
        candidates: &[TestCandidate],
        headroom_watts: f64,
        launches: &mut Vec<TestLaunch>,
        denials: &mut Vec<TestDenial>,
    ) {
        launches.clear();
        denials.clear();
        let mut remaining = headroom_watts;
        for req in retests {
            if launches.len() >= self.config.max_launches_per_epoch {
                break;
            }
            let routine_id = self.cursors[req.core];
            let routine = self.library.routine(routine_id);
            let op = self.ladder.point(req.level);
            let power = self.model.core_power(op, routine.activity);
            self.launches_attempted += 1;
            if power <= remaining {
                remaining -= power;
                launches.push(TestLaunch {
                    core: req.core,
                    routine: routine_id,
                    level: req.level,
                    power,
                    rate: op.frequency * self.config.ipc,
                    instructions: routine.instructions,
                });
            } else {
                self.launches_denied_power += 1;
                denials.push(TestDenial {
                    core: req.core,
                    level: req.level,
                    power,
                    headroom: remaining,
                });
            }
        }
        let mut ranked = std::mem::take(&mut self.rank_scratch);
        // lint:allow(hot-path-purity, reason = "rank scratch reuses its capacity across scheduling rounds; extend allocates only until the high-water mark")
        ranked.extend(
            candidates
                .iter()
                .copied()
                .filter(|c| c.criticality >= self.config.criticality_threshold),
        );
        // Deterministic top-k partial selection: build a max-heap in
        // O(n) and pop ranks lazily instead of fully sorting. Core ids
        // are unique within a call, so the ordering is strictly total
        // and the pop sequence reproduces the old stable sort exactly —
        // but ranks beyond the launch cap are never ordered at all.
        let mut heap_len = ranked.len();
        for i in (0..heap_len / 2).rev() {
            Self::sift_down(&mut ranked, heap_len, i);
        }
        while heap_len > 0 {
            if launches.len() >= self.config.max_launches_per_epoch {
                break;
            }
            let cand = ranked[0];
            heap_len -= 1;
            ranked.swap(0, heap_len);
            Self::sift_down(&mut ranked, heap_len, 0);
            self.heap_pops += 1;
            let level = match self.config.fixed_level {
                Some(l) => VfLevel(l),
                None => self.ledger.next_level_staggered(cand.core),
            };
            let routine_id = self.cursors[cand.core];
            let routine = self.library.routine(routine_id);
            let op = self.ladder.point(level);
            let power = self.model.core_power(op, routine.activity);
            self.launches_attempted += 1;
            if power <= remaining {
                remaining -= power;
                launches.push(TestLaunch {
                    core: cand.core,
                    routine: routine_id,
                    level,
                    power,
                    rate: op.frequency * self.config.ipc,
                    instructions: routine.instructions,
                });
            } else {
                self.launches_denied_power += 1;
                denials.push(TestDenial {
                    core: cand.core,
                    level,
                    power,
                    headroom: remaining,
                });
            }
        }
        ranked.clear();
        self.rank_scratch = ranked;
    }

    /// Strict ranking order: higher criticality first, ties broken by
    /// ascending core id. Candidate core ids are unique per planning
    /// call, so no two distinct candidates compare equal — the property
    /// that makes heap pops reproduce a stable sort's output.
    fn ranks_before(a: &TestCandidate, b: &TestCandidate) -> bool {
        match a.criticality.partial_cmp(&b.criticality) {
            Some(std::cmp::Ordering::Greater) => true,
            Some(std::cmp::Ordering::Less) => false,
            Some(std::cmp::Ordering::Equal) => a.core < b.core,
            // lint:allow(hot-path-purity, reason = "criticality is a product of finite clamped model inputs; NaN would corrupt the ranking silently, so fail loudly")
            None => panic!("criticality is never NaN"),
        }
    }

    /// Restores the max-heap property for the subtree at `i` within
    /// `heap[..len]`.
    fn sift_down(heap: &mut [TestCandidate], len: usize, mut i: usize) {
        loop {
            let left = 2 * i + 1;
            if left >= len {
                break;
            }
            let mut best = left;
            let right = left + 1;
            if right < len && Self::ranks_before(&heap[right], &heap[best]) {
                best = right;
            }
            if Self::ranks_before(&heap[best], &heap[i]) {
                heap.swap(i, best);
                i = best;
            } else {
                break;
            }
        }
    }

    /// Ranked-lane heap pops over the scheduler's lifetime.
    pub fn heap_pops(&self) -> u64 {
        self.heap_pops
    }

    /// Records a completed session: coverage advances and the core's
    /// routine cursor rotates.
    pub fn on_session_complete(&mut self, core: usize, routine: RoutineId, level: VfLevel) {
        self.ledger.record(core, level);
        self.cursors[core] = self.library.next_in_rotation(routine);
    }

    /// Records an aborted session: no coverage credit; the same routine is
    /// retried on the core's next idle period.
    pub fn on_session_aborted(&mut self, _core: usize) {}

    /// Number of planning attempts that were denied for lack of power.
    pub fn denied_for_power(&self) -> u64 {
        self.launches_denied_power
    }

    /// Number of launches considered (admitted + denied).
    pub fn attempts(&self) -> u64 {
        self.launches_attempted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheduler() -> TestScheduler {
        TestScheduler::with_library(
            TestSchedulerConfig::default(),
            TechNode::N16,
            RoutineLibrary::standard(),
            16,
        )
    }

    fn candidate(core: usize, crit: f64) -> TestCandidate {
        TestCandidate {
            core,
            criticality: crit,
        }
    }

    #[test]
    fn most_critical_core_is_served_first() {
        let mut s = scheduler();
        let launches = s.plan(&[candidate(0, 1.0), candidate(1, 5.0), candidate(2, 3.0)], 100.0);
        let order: Vec<usize> = launches.iter().map(|l| l.core).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn heap_selection_matches_the_full_sort_order() {
        // Equivalence against the pre-heap ranking: pops must come out in
        // exactly the order the old full `sort_by` (descending
        // criticality, ties ascending by core id) produced. Deterministic
        // xorshift inputs with a coarse criticality grid force plenty of
        // ties.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let n = (next() % 48) as usize + 1;
            let candidates: Vec<TestCandidate> = (0..n)
                .map(|core| candidate(core, (next() % 8) as f64 * 0.5))
                .collect();
            let mut reference = candidates.clone();
            reference.sort_by(|a, b| {
                b.criticality
                    .partial_cmp(&a.criticality)
                    .unwrap()
                    .then(a.core.cmp(&b.core))
            });
            let expected: Vec<usize> = reference.iter().map(|c| c.core).collect();
            let mut cfg = TestSchedulerConfig::default();
            cfg.criticality_threshold = 0.0;
            cfg.max_launches_per_epoch = 1024;
            let mut s =
                TestScheduler::with_library(cfg, TechNode::N16, RoutineLibrary::standard(), 64);
            let pops_before = s.heap_pops();
            let launches = s.plan(&candidates, 1e9);
            let order: Vec<usize> = launches.iter().map(|l| l.core).collect();
            assert_eq!(order, expected);
            assert_eq!(s.heap_pops() - pops_before, n as u64);
        }
    }

    #[test]
    fn below_threshold_cores_are_skipped() {
        let mut s = scheduler();
        let launches = s.plan(&[candidate(0, 0.2), candidate(1, 0.8)], 100.0);
        assert_eq!(launches.len(), 1);
        assert_eq!(launches[0].core, 1);
    }

    #[test]
    fn zero_headroom_launches_nothing() {
        let mut s = scheduler();
        let launches = s.plan(&[candidate(0, 5.0)], 0.0);
        assert!(launches.is_empty());
        assert_eq!(s.denied_for_power(), 1);
    }

    #[test]
    fn headroom_limits_concurrent_sessions() {
        let mut s = scheduler();
        // Cores 0, 5, 10, 15 all start at level 0 (stagger period = 5), so
        // every planned session costs the same.
        let one_session = s.session_power(RoutineId(0), VfLevel(0));
        let candidates: Vec<TestCandidate> =
            (0..16).step_by(5).map(|c| candidate(c, 1.0)).collect();
        let launches = s.plan(&candidates, one_session * 2.5);
        assert_eq!(launches.len(), 2, "2.5 sessions of headroom admits 2");
        let total: f64 = launches.iter().map(|l| l.power).sum();
        assert!(total <= one_session * 2.5 + 1e-9);
    }

    #[test]
    fn max_launches_cap_is_respected() {
        let mut cfg = TestSchedulerConfig::default();
        cfg.max_launches_per_epoch = 2;
        let mut s = TestScheduler::with_library(cfg, TechNode::N16, RoutineLibrary::standard(), 8);
        let candidates: Vec<TestCandidate> = (0..8).map(|c| candidate(c, 1.0)).collect();
        assert_eq!(s.plan(&candidates, 1e9).len(), 2);
    }

    #[test]
    fn completion_rotates_routines_and_levels() {
        let mut s = scheduler();
        let first = s.plan(&[candidate(0, 1.0)], 100.0)[0];
        s.on_session_complete(first.core, first.routine, first.level);
        let second = s.plan(&[candidate(0, 1.0)], 100.0)[0];
        assert_ne!(first.routine, second.routine, "routine must rotate");
        assert_ne!(first.level, second.level, "level must rotate");
        assert_eq!(s.ledger().tests_on_core(0), 1);
    }

    #[test]
    fn abort_gives_no_credit_and_repeats_routine() {
        let mut s = scheduler();
        let first = s.plan(&[candidate(0, 1.0)], 100.0)[0];
        s.on_session_aborted(first.core);
        let retry = s.plan(&[candidate(0, 1.0)], 100.0)[0];
        assert_eq!(first.routine, retry.routine);
        assert_eq!(s.ledger().tests_on_core(0), 0);
    }

    #[test]
    fn all_levels_get_covered_over_time() {
        let mut s = scheduler();
        for _ in 0..(5 * 5) {
            // 5 routines × 5 levels
            let l = s.plan(&[candidate(3, 1.0)], 100.0)[0];
            s.on_session_complete(l.core, l.routine, l.level);
        }
        assert!(s.ledger().core_fully_covered(3));
    }

    #[test]
    fn near_threshold_tests_are_cheaper() {
        let s = scheduler();
        let low = s.session_power(RoutineId(0), VfLevel(0));
        let high = s.session_power(RoutineId(0), VfLevel(4));
        assert!(low < high);
    }

    #[test]
    fn launch_duration_is_consistent() {
        let mut s = scheduler();
        let l = s.plan(&[candidate(0, 1.0)], 100.0)[0];
        let expected = l.instructions as f64 / l.rate;
        assert!((l.duration() - expected).abs() < 1e-15);
        assert!(l.duration() > 0.0);
    }

    #[test]
    fn denied_and_attempt_counters() {
        let mut s = scheduler();
        s.plan(&[candidate(0, 1.0), candidate(1, 1.0)], 1e-6);
        assert_eq!(s.attempts(), 2);
        assert_eq!(s.denied_for_power(), 2);
    }

    #[test]
    fn plan_into_reports_denials_with_headroom() {
        let mut s = scheduler();
        let one_session = s.session_power(RoutineId(0), VfLevel(0));
        // Stagger-aligned cores so both sessions cost the same; headroom
        // admits exactly one, the second is denied with the leftovers.
        let candidates = [candidate(0, 2.0), candidate(5, 1.0)];
        let mut launches = Vec::new();
        let mut denials = Vec::new();
        s.plan_into(&candidates, one_session * 1.5, &mut launches, &mut denials);
        assert_eq!(launches.len(), 1);
        assert_eq!(denials.len(), 1);
        let d = denials[0];
        assert_eq!(d.core, 5);
        assert!((d.power - one_session).abs() < 1e-12);
        assert!((d.headroom - one_session * 0.5).abs() < 1e-9);
        assert!(d.headroom < d.power, "denial means needed > headroom");
        assert_eq!(s.denied_for_power(), 1);
        // Buffers are cleared on reuse.
        s.plan_into(&candidates, 1e9, &mut launches, &mut denials);
        assert_eq!(launches.len(), 2);
        assert!(denials.is_empty());
    }

    #[test]
    fn plan_and_plan_into_agree() {
        let mut a = scheduler();
        let mut b = scheduler();
        let candidates: Vec<TestCandidate> = (0..16).map(|c| candidate(c, 1.0)).collect();
        let headroom = a.session_power(RoutineId(0), VfLevel(0)) * 3.2;
        let via_plan = a.plan(&candidates, headroom);
        let mut via_into = Vec::new();
        let mut denials = Vec::new();
        b.plan_into(&candidates, headroom, &mut via_into, &mut denials);
        assert_eq!(via_plan, via_into);
        assert_eq!(a.denied_for_power(), b.denied_for_power());
        assert_eq!(a, b, "scratch buffer must not leak into scheduler state");
    }

    #[test]
    fn fixed_level_pins_every_launch() {
        let cfg = TestSchedulerConfig {
            fixed_level: Some(4),
            criticality_threshold: 0.0,
            ..TestSchedulerConfig::default()
        };
        let mut s = TestScheduler::with_library(cfg, TechNode::N16, RoutineLibrary::standard(), 8);
        for round in 0..3 {
            let candidates: Vec<TestCandidate> = (0..8).map(|c| candidate(c, 1.0)).collect();
            for l in s.plan(&candidates, 1e9) {
                assert_eq!(l.level, VfLevel(4), "round {round}");
                s.on_session_complete(l.core, l.routine, l.level);
            }
        }
    }

    #[test]
    fn retests_are_served_first_at_the_pinned_level() {
        let mut s = scheduler();
        // The suspect core fails the criticality threshold *and* would
        // rotate to a different level — the retest overrides both.
        let retests = [RetestRequest { core: 7, level: VfLevel(3) }];
        let candidates = [candidate(0, 5.0), candidate(7, 0.1)];
        let mut launches = Vec::new();
        let mut denials = Vec::new();
        s.plan_with_retests_into(&retests, &candidates, 1e9, &mut launches, &mut denials);
        assert_eq!(launches.len(), 2);
        assert_eq!(launches[0].core, 7, "retest comes before the ranked lane");
        assert_eq!(launches[0].level, VfLevel(3), "retest is pinned to the detecting level");
        assert_eq!(launches[1].core, 0);
    }

    #[test]
    fn retests_compete_for_headroom_and_the_launch_cap() {
        let mut s = scheduler();
        // Cursor starts at routine 0 on every core.
        let retest_power = s.session_power(RoutineId(0), VfLevel(2));
        let retests = [
            RetestRequest { core: 1, level: VfLevel(2) },
            RetestRequest { core: 2, level: VfLevel(2) },
        ];
        let mut launches = Vec::new();
        let mut denials = Vec::new();
        // Headroom for exactly one retest: the second is denied, the
        // ranked candidate behind it is denied too.
        s.plan_with_retests_into(
            &retests,
            &[candidate(0, 5.0)],
            retest_power * 1.2,
            &mut launches,
            &mut denials,
        );
        assert_eq!(launches.len(), 1);
        assert_eq!(launches[0].core, 1);
        assert_eq!(denials.len(), 2);
        assert_eq!(denials[0].core, 2);

        // Launch cap: one slot, claimed by the retest.
        let mut cfg = TestSchedulerConfig::default();
        cfg.max_launches_per_epoch = 1;
        let mut s = TestScheduler::with_library(cfg, TechNode::N16, RoutineLibrary::standard(), 8);
        s.plan_with_retests_into(
            &[RetestRequest { core: 3, level: VfLevel(0) }],
            &[candidate(0, 5.0)],
            1e9,
            &mut launches,
            &mut denials,
        );
        assert_eq!(launches.len(), 1);
        assert_eq!(launches[0].core, 3);
    }

    #[test]
    fn plan_with_empty_retests_matches_plan_into() {
        let mut a = scheduler();
        let mut b = scheduler();
        let candidates: Vec<TestCandidate> = (0..16).map(|c| candidate(c, 1.0)).collect();
        let headroom = a.session_power(RoutineId(0), VfLevel(0)) * 3.2;
        let mut la = Vec::new();
        let mut da = Vec::new();
        let mut lb = Vec::new();
        let mut db = Vec::new();
        a.plan_into(&candidates, headroom, &mut la, &mut da);
        b.plan_with_retests_into(&[], &candidates, headroom, &mut lb, &mut db);
        assert_eq!(la, lb);
        assert_eq!(da, db);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "fixed level outside")]
    fn fixed_level_out_of_range_panics() {
        let cfg = TestSchedulerConfig {
            fixed_level: Some(9),
            ..TestSchedulerConfig::default()
        };
        TestScheduler::with_library(cfg, TechNode::N16, RoutineLibrary::standard(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        TestScheduler::with_library(
            TestSchedulerConfig::default(),
            TechNode::N16,
            RoutineLibrary::standard(),
            0,
        );
    }
}
