//! Consistency checks between captured telemetry and report aggregates.
//!
//! Every decision the control loop makes is double-entried: once as a
//! structured [`manytest_sim::SimEvent`] and once in the aggregate
//! counters the report is built from. [`validate_events`] reconciles the
//! two — if a count diverges, either an emission point is missing/doubled
//! or an aggregate is wrong, and both are bugs worth failing a CI run
//! over. The event log keeps per-kind counts exact even when its sample
//! buffer saturates, so these invariants hold at any capture capacity.

use crate::metrics::Report;
use manytest_sim::{HealthCode, ProvenanceGraph, SimEvent};
use std::fmt::Write as _;

/// Checks every event-count invariant against the report's aggregates.
///
/// Invariants (exact equalities unless noted):
///
/// * `TestLaunched == tests_completed + tests_aborted + tests_in_flight`
/// * `TestCompleted == tests_completed`, `TestAborted == tests_aborted`
/// * `TestDeniedPower == tests_denied_power`
/// * `AppArrived == apps_arrived`, `AppRejected == apps_rejected`,
///   `AppCompleted == apps_completed`
/// * `AppMapped == apps_completed + apps_in_flight − apps_pending +
///   apps_aborted + apps_restarted` (every mapping either runs to
///   completion, is still in flight, was killed by a quarantine, or was a
///   first placement of an app that later restarted and was mapped again)
/// * `CapAdjusted == cap_adjustments` (one governor move per epoch)
/// * `FaultActivated == fault_activations` (occurrences)
/// * `FaultDetected == fault_detections` (occurrences, not end-state)
/// * Response pipeline: `CoreSuspected == cores_suspected`,
///   `CoreQuarantined == cores_quarantined`, `CoreCleared ==
///   cores_cleared`, `AppAborted == apps_aborted`, `AppRestarted ==
///   apps_restarted`, `AppMigrated == apps_migrated`, and the inequality
///   `CoreSuspected >= CoreQuarantined + CoreCleared` (a suspicion may
///   still be open at the end of the run)
/// * Re-admission lane: `CoreProbeLaunched == probes_launched`,
///   `CoreReadmitted == cores_readmitted`, `CoreRequarantined ==
///   cores_requarantined`, and the inequality `CoreReadmitted <=
///   CoreQuarantined + CoreRequarantined` (every re-admission was
///   preceded by some quarantine entry)
/// * `AppCheckpointed == apps_checkpointed`
/// * Sequence invariant (checked only when no events were dropped): after
///   a core's `CoreQuarantined` event, no `TestLaunched` targets it and no
///   `AppMapped` places task 0 on it until a `CoreReadmitted` restores the
///   core — probation is not enough. A withdrawn core stays power-gated
///   except while a probe session is live on it, every probe targets a
///   core that was actually quarantined, and no probe's recorded
///   in-flight count exceeds the lane budget.
/// * Provenance DAG: event ids are strictly increasing and times
///   non-decreasing, and every cause link points strictly backwards
///   (`cause.id < id`), which proves the graph acyclic and time-ordered
///   even when the bounded log saturated. When no events were dropped,
///   additionally: every link resolves to a stored record, every link's
///   endpoint kinds match the [`manytest_sim::CauseKind`] table, every
///   kind outside [`SimEvent::ROOT_KINDS`] carries a cause, and every
///   quarantine/readmission/requarantine/migration/denial/abort/restart
///   chains back to a genuine root. Under saturation the resolution checks are downgraded
///   (dropped records would orphan links spuriously).
///
/// # Errors
///
/// Returns one line per violated invariant, joined with newlines. A
/// report with no captured events (the default) trivially passes only if
/// its aggregates are all zero-consistent — call this on runs built with
/// `SystemBuilder::capture_events`.
pub fn validate_events(report: &Report) -> Result<(), String> {
    let ev = &report.events;
    let checks: [(&str, u64, u64); 21] = [
        (
            "CapAdjusted == cap_adjustments",
            ev.count("CapAdjusted"),
            report.cap_adjustments,
        ),
        (
            "FaultActivated == fault_activations",
            ev.count("FaultActivated"),
            report.fault_activations,
        ),
        (
            "TestLaunched == tests_completed + tests_aborted + tests_in_flight",
            ev.count("TestLaunched"),
            report.tests_completed + report.tests_aborted + report.tests_in_flight,
        ),
        (
            "TestCompleted == tests_completed",
            ev.count("TestCompleted"),
            report.tests_completed,
        ),
        (
            "TestAborted == tests_aborted",
            ev.count("TestAborted"),
            report.tests_aborted,
        ),
        (
            "TestDeniedPower == tests_denied_power",
            ev.count("TestDeniedPower"),
            report.tests_denied_power,
        ),
        (
            "AppArrived == apps_arrived",
            ev.count("AppArrived"),
            report.apps_arrived,
        ),
        (
            "AppRejected == apps_rejected",
            ev.count("AppRejected"),
            report.apps_rejected,
        ),
        (
            "AppCompleted == apps_completed",
            ev.count("AppCompleted"),
            report.apps_completed,
        ),
        (
            "AppMapped == apps_completed + apps_in_flight - apps_pending \
             + apps_aborted + apps_restarted",
            ev.count("AppMapped"),
            report.apps_completed + report.apps_in_flight - report.apps_pending
                + report.apps_aborted
                + report.apps_restarted,
        ),
        (
            "FaultDetected == fault_detections",
            ev.count("FaultDetected"),
            report.fault_detections,
        ),
        (
            "CoreSuspected == cores_suspected",
            ev.count("CoreSuspected"),
            report.cores_suspected,
        ),
        (
            "CoreQuarantined == cores_quarantined",
            ev.count("CoreQuarantined"),
            report.cores_quarantined,
        ),
        (
            "CoreCleared == cores_cleared",
            ev.count("CoreCleared"),
            report.cores_cleared,
        ),
        (
            "AppAborted == apps_aborted",
            ev.count("AppAborted"),
            report.apps_aborted,
        ),
        (
            "AppRestarted == apps_restarted",
            ev.count("AppRestarted"),
            report.apps_restarted,
        ),
        (
            "AppMigrated == apps_migrated",
            ev.count("AppMigrated"),
            report.apps_migrated,
        ),
        (
            "CoreProbeLaunched == probes_launched",
            ev.count("CoreProbeLaunched"),
            report.probes_launched,
        ),
        (
            "CoreReadmitted == cores_readmitted",
            ev.count("CoreReadmitted"),
            report.cores_readmitted,
        ),
        (
            "CoreRequarantined == cores_requarantined",
            ev.count("CoreRequarantined"),
            report.cores_requarantined,
        ),
        (
            "AppCheckpointed == apps_checkpointed",
            ev.count("AppCheckpointed"),
            report.apps_checkpointed,
        ),
    ];
    let mut errors = String::new();
    for (invariant, from_events, from_report) in checks {
        if from_events != from_report {
            let _ = writeln!(
                errors,
                "event-count invariant violated: {invariant} \
                 (events say {from_events}, report says {from_report})"
            );
        }
    }
    let (suspected, quarantined, cleared) = (
        ev.count("CoreSuspected"),
        ev.count("CoreQuarantined"),
        ev.count("CoreCleared"),
    );
    if suspected < quarantined + cleared {
        let _ = writeln!(
            errors,
            "event-count invariant violated: CoreSuspected >= CoreQuarantined + CoreCleared \
             ({suspected} < {quarantined} + {cleared})"
        );
    }
    // Every re-admission was preceded by some quarantine entry (first or
    // repeat), so readmissions can never outnumber quarantine entries.
    let (readmitted, requarantined) = (
        ev.count("CoreReadmitted"),
        ev.count("CoreRequarantined"),
    );
    if readmitted > quarantined + requarantined {
        let _ = writeln!(
            errors,
            "event-count invariant violated: \
             CoreReadmitted <= CoreQuarantined + CoreRequarantined \
             ({readmitted} > {quarantined} + {requarantined})"
        );
    }
    // The sequence invariant needs the complete sample stream, not just
    // counts; skip it (honestly) when the bounded log overflowed.
    if ev.dropped() == 0 {
        validate_quarantine_sequence(report, &mut errors);
    }
    validate_provenance(report, &mut errors);
    validate_profile(report, &mut errors);
    validate_state_timeline(report, &mut errors);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors.trim_end().to_owned())
    }
}

/// Reconciles the deterministic phase profile against the report's
/// aggregates. The profiler counts decisions at the point they are made,
/// the aggregates count them at the point they are recorded; any drift
/// means an instrumentation point is missing or doubled. Skipped when
/// the profile is empty (hand-built reports never ran the control loop).
fn validate_profile(report: &Report, errors: &mut String) {
    let p = &report.profile;
    if p.epochs == 0 {
        return;
    }
    let launched = report.tests_completed + report.tests_aborted + report.tests_in_flight;
    let mapped = report.apps_completed + report.apps_in_flight - report.apps_pending
        + report.apps_aborted
        + report.apps_restarted;
    let checks: [(&str, u64, u64); 7] = [
        (
            "profile.epochs == cap_adjustments",
            p.epochs,
            report.cap_adjustments,
        ),
        (
            "profile.pid_updates == cap_adjustments",
            p.pid_updates,
            report.cap_adjustments,
        ),
        (
            "profile.fault_sweeps == profile.epochs",
            p.fault_sweeps,
            p.epochs,
        ),
        (
            "profile.fault_activations == fault_activations",
            p.fault_activations,
            report.fault_activations,
        ),
        (
            "profile.sched_denials == tests_denied_power",
            p.sched_denials,
            report.tests_denied_power,
        ),
        (
            "profile.sched_launches == tests_completed + tests_aborted + tests_in_flight",
            p.sched_launches,
            launched,
        ),
        (
            "profile.apps_admitted == apps_completed + apps_in_flight - apps_pending \
             + apps_aborted + apps_restarted",
            p.apps_admitted,
            mapped,
        ),
    ];
    for (invariant, lhs, rhs) in checks {
        if lhs != rhs {
            let _ = writeln!(
                errors,
                "profile invariant violated: {invariant} ({lhs} != {rhs})"
            );
        }
    }
    if p.retests_planned < report.confirmation_retests {
        let _ = writeln!(
            errors,
            "profile invariant violated: retests_planned >= confirmation_retests \
             ({} < {})",
            p.retests_planned, report.confirmation_retests
        );
    }
    // Incremental-structure counters. Every launch came off the ranked
    // heap or the retest lane; the map context is built at most once per
    // admission scan plus once per migration; every admission queried the
    // maintained free-core count and patched the context in place.
    let incremental: [(&str, u64, u64); 4] = [
        (
            "sched_launches <= heap_pops + retests_planned",
            p.sched_launches,
            p.heap_pops + p.retests_planned,
        ),
        (
            "ctx_rebuilds <= admit_scans + apps_migrated",
            p.ctx_rebuilds,
            p.admit_scans + report.apps_migrated,
        ),
        (
            "apps_admitted <= free_set_queries",
            p.apps_admitted,
            p.free_set_queries,
        ),
        (
            "apps_admitted <= ctx_delta_updates",
            p.apps_admitted,
            p.ctx_delta_updates,
        ),
    ];
    for (invariant, lhs, rhs) in incremental {
        if lhs > rhs {
            let _ = writeln!(
                errors,
                "profile invariant violated: {invariant} ({lhs} > {rhs})"
            );
        }
    }
    // Per-epoch phases either never ran (feature off) or ran every epoch.
    for (name, count) in [
        ("thermal_steps", p.thermal_steps),
        ("snapshots", p.snapshots),
        ("sched_calls", p.sched_calls),
        ("admit_scans", p.admit_scans),
    ] {
        if count != 0 && count != p.epochs {
            let _ = writeln!(
                errors,
                "profile invariant violated: {name} in {{0, epochs}} \
                 ({count} != 0 and != {})",
                p.epochs
            );
        }
    }
}

/// Reconciles the flight-recorder timeline against the report: the final
/// snapshot is always retained exactly (never decimated away), so its
/// queue depths and health tallies must match the end-of-run aggregates,
/// and the recorder's offer count must match the profiler's.
fn validate_state_timeline(report: &Report, errors: &mut String) {
    let state = &report.state;
    if state.is_empty() {
        return;
    }
    if state.seen() != report.profile.snapshots {
        let _ = writeln!(
            errors,
            "state invariant violated: recorder saw {} snapshots, profiler counted {}",
            state.seen(),
            report.profile.snapshots
        );
    }
    let Some(last) = state.last() else { return };
    let healthy = last
        .cores
        .iter()
        .filter(|c| c.health == HealthCode::Healthy)
        .count() as u64;
    let checks: [(&str, u64, u64); 3] = [
        (
            "last snapshot pending_apps == apps_pending",
            u64::from(last.pending_apps),
            report.apps_pending,
        ),
        (
            "last snapshot active_tests == tests_in_flight",
            u64::from(last.active_tests),
            report.tests_in_flight,
        ),
        (
            "last snapshot healthy cores == healthy_cores_end",
            healthy,
            report.healthy_cores_end,
        ),
    ];
    for (invariant, lhs, rhs) in checks {
        if lhs != rhs {
            let _ = writeln!(
                errors,
                "state invariant violated: {invariant} ({lhs} != {rhs})"
            );
        }
    }
}

/// Scans the event stream for lifecycle violations on withdrawn cores.
///
/// Once a core's `CoreQuarantined` event is emitted, any `TestLaunched`
/// on it or `AppMapped` placing task 0 on it is a response-pipeline bug
/// until a `CoreReadmitted` restores it — probation is *not* enough; the
/// core stays unmappable until the re-admission lane signs off. Power is
/// subtler: a withdrawn core is gated except while a probe session is
/// live on it (`CoreProbeLaunched` .. verdict), when the lane clocks it
/// at the probe level. Additionally each `CoreProbeLaunched` must target
/// a core that is actually withdrawn, and its recorded in-flight count
/// must never exceed the lane budget the report echoes.
fn validate_quarantine_sequence(report: &Report, errors: &mut String) {
    let mesh_nodes = report
        .events
        .events()
        .iter()
        .map(|rec| match rec.ev {
            SimEvent::CoreQuarantined { core, .. }
            | SimEvent::CoreProbeLaunched { core, .. }
            | SimEvent::CoreReadmitted { core, .. }
            | SimEvent::CoreRequarantined { core, .. }
            | SimEvent::TestLaunched { core, .. }
            | SimEvent::DvfsTransition { core, .. } => core as usize + 1,
            // lint:allow(event-match-exhaustiveness, reason = "subset contract: mesh-size inference only reads core-bearing variants; core-free events contribute 0")
            _ => 0,
        })
        .max()
        .unwrap_or(0);
    if mesh_nodes == 0 {
        return;
    }
    let mut quarantined = vec![false; mesh_nodes];
    let mut probing = vec![false; mesh_nodes];
    for rec in report.events.events() {
        let (t, ev) = (rec.t, rec.ev);
        match ev {
            SimEvent::CoreQuarantined { core, .. } => {
                quarantined[core as usize] = true;
                probing[core as usize] = false;
            }
            SimEvent::CoreProbeLaunched { core, inflight, .. } => {
                if !quarantined[core as usize] {
                    let _ = writeln!(
                        errors,
                        "sequence invariant violated: probe launched on \
                         never-quarantined core {core} at t={t}"
                    );
                }
                if report.probe_budget > 0 && u64::from(inflight) > report.probe_budget {
                    let _ = writeln!(
                        errors,
                        "sequence invariant violated: probe on core {core} at t={t} \
                         reports {inflight} sessions in flight, lane budget is {}",
                        report.probe_budget
                    );
                }
                probing[core as usize] = true;
            }
            SimEvent::CoreReadmitted { core, .. } => {
                if !quarantined[core as usize] {
                    let _ = writeln!(
                        errors,
                        "sequence invariant violated: CoreReadmitted for \
                         never-quarantined core {core} at t={t}"
                    );
                }
                quarantined[core as usize] = false;
                probing[core as usize] = false;
            }
            SimEvent::CoreRequarantined { core, .. } => {
                quarantined[core as usize] = true;
                probing[core as usize] = false;
            }
            SimEvent::TestLaunched { core, .. } if quarantined[core as usize] => {
                let _ = writeln!(
                    errors,
                    "sequence invariant violated: TestLaunched on quarantined core {core} at t={t}"
                );
            }
            SimEvent::AppMapped { first_node, .. }
                if (first_node as usize) < mesh_nodes && quarantined[first_node as usize] =>
            {
                let _ = writeln!(
                    errors,
                    "sequence invariant violated: AppMapped onto quarantined core {first_node} at t={t}"
                );
            }
            SimEvent::DvfsTransition { core, to, .. }
                if to >= 0 && quarantined[core as usize] && !probing[core as usize] =>
            {
                let _ = writeln!(
                    errors,
                    "sequence invariant violated: quarantined core {core} powered back on at t={t}"
                );
            }
            // lint:allow(event-match-exhaustiveness, reason = "subset contract: the sequence checker only constrains quarantine/power ordering; other events are order-free")
            _ => {}
        }
    }
}

/// Validates the event stream as a provenance DAG.
///
/// Monotonicity (strictly increasing ids, non-decreasing times, every
/// cause id strictly below its effect's id) survives saturation: the
/// bounded log drops records but never reorders them, so these hold on
/// any suffix/sample of the emission stream — and together they prove the
/// graph acyclic and time-ordered. Link *resolution* does not survive
/// saturation (a dropped record orphans its children's links), so the
/// table-conformance, required-cause and root-reachability checks run
/// only when `dropped == 0`.
fn validate_provenance(report: &Report, errors: &mut String) {
    let recs = report.events.events();
    let mut last_id: Option<u64> = None;
    let mut last_t = f64::NEG_INFINITY;
    for rec in recs {
        if let Some(prev) = last_id {
            if rec.id.0 <= prev {
                let _ = writeln!(
                    errors,
                    "provenance invariant violated: event ids must be strictly increasing \
                     (#{} follows #{prev})",
                    rec.id.0
                );
            }
        }
        if rec.t < last_t {
            let _ = writeln!(
                errors,
                "provenance invariant violated: event times must be non-decreasing \
                 (t={} after t={last_t} at #{})",
                rec.t, rec.id.0
            );
        }
        last_id = Some(rec.id.0);
        last_t = rec.t;
        if let Some(link) = rec.cause {
            if link.id.0 >= rec.id.0 {
                let _ = writeln!(
                    errors,
                    "provenance invariant violated: cause must precede effect \
                     ({} #{} links to #{})",
                    rec.ev.kind(),
                    rec.id.0,
                    link.id.0
                );
            }
        }
    }
    if report.events.dropped() > 0 {
        return;
    }
    let graph = ProvenanceGraph::build(recs);
    for rec in recs {
        let kind = rec.ev.kind();
        match rec.cause {
            Some(link) => match graph.record(link.id) {
                Some(parent) => {
                    let (sources, targets) = link.kind.expected();
                    if !sources.contains(&parent.ev.kind()) || !targets.contains(&kind) {
                        let _ = writeln!(
                            errors,
                            "provenance invariant violated: link table forbids \
                             {} -[{}]-> {} (#{} -> #{})",
                            parent.ev.kind(),
                            link.kind.as_str(),
                            kind,
                            link.id.0,
                            rec.id.0
                        );
                    }
                }
                None => {
                    let _ = writeln!(
                        errors,
                        "provenance invariant violated: {} #{} carries a dangling \
                         cause link to #{} (no drop recorded)",
                        kind, rec.id.0, link.id.0
                    );
                }
            },
            None => {
                if SimEvent::cause_required(rec.ev.kind_index()) {
                    let _ = writeln!(
                        errors,
                        "provenance invariant violated: {} #{} must carry a cause link",
                        kind, rec.id.0
                    );
                }
            }
        }
    }
    // Every response-pipeline outcome must chain back to a genuine root:
    // "why was this core withdrawn / this app killed / this test denied"
    // always has an answer.
    for rec in recs {
        let traced = matches!(
            rec.ev,
            SimEvent::CoreQuarantined { .. }
                | SimEvent::CoreReadmitted { .. }
                | SimEvent::CoreRequarantined { .. }
                | SimEvent::AppMigrated { .. }
                | SimEvent::AppAborted { .. }
                | SimEvent::AppRestarted { .. }
                | SimEvent::TestDeniedPower { .. }
        );
        if !traced {
            continue;
        }
        let chain = graph.chain_to_root(rec.id);
        let Some(&root) = chain.last() else {
            continue; // unreachable: the chain contains the record itself
        };
        if !SimEvent::ROOT_KINDS.contains(&root.ev.kind()) {
            let _ = writeln!(
                errors,
                "provenance invariant violated: {} #{} is not reachable from a root \
                 (chain stops at {} #{})",
                rec.ev.kind(),
                rec.id.0,
                root.ev.kind(),
                root.id.0
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manytest_sim::{CauseKind, CauseLink, EventId, EventRecord, SimEvent};

    #[test]
    fn empty_report_passes() {
        validate_events(&Report::default()).expect("all-zero report reconciles");
    }

    #[test]
    fn consistent_counts_pass() {
        let mut r = Report::default();
        r.tests_completed = 2;
        r.tests_aborted = 1;
        r.apps_arrived = 1;
        let mut launches = Vec::new();
        for _ in 0..3 {
            launches.push(r.events.push(
                0.0,
                SimEvent::TestLaunched {
                    core: 0,
                    routine: 0,
                    level: 0,
                    power: 1.0,
                    headroom: 1.0,
                },
            ));
        }
        for &launch in &launches[..2] {
            r.events.push_caused(
                0.0,
                Some(CauseLink::new(CauseKind::Session, launch)),
                SimEvent::TestCompleted {
                    core: 0,
                    routine: 0,
                    level: 0,
                    covered_levels: 1,
                    interval: -1.0,
                },
            );
        }
        r.events.push_caused(
            0.0,
            Some(CauseLink::new(CauseKind::Session, launches[2])),
            SimEvent::TestAborted {
                core: 0,
                reason: manytest_sim::AbortReason::MappedOver,
            },
        );
        r.events.push(0.0, SimEvent::AppArrived { app: 0, tasks: 1 });
        validate_events(&r).expect("consistent counts");
    }

    #[test]
    fn divergent_counts_name_the_invariant() {
        let mut r = Report::default();
        r.events.push(0.0, SimEvent::AppArrived { app: 0, tasks: 1 });
        // apps_arrived stays 0 → mismatch.
        let err = validate_events(&r).unwrap_err();
        assert!(err.contains("AppArrived == apps_arrived"), "got: {err}");
        assert!(err.contains("events say 1, report says 0"), "got: {err}");
    }

    #[test]
    fn response_pipeline_counts_reconcile() {
        let mut r = Report::default();
        r.apps_arrived = 1;
        r.cores_suspected = 2;
        r.cores_quarantined = 1;
        r.cores_cleared = 1;
        r.apps_restarted = 1;
        r.fault_activations = 1;
        r.fault_detections = 1;
        r.tests_completed = 1;
        // The restarted app was mapped once before its restart; its
        // second placement is still pending, so AppMapped totals 1.
        let arrived = r.events.push(0.01, SimEvent::AppArrived { app: 7, tasks: 2 });
        r.events.push_caused(
            0.05,
            Some(CauseLink::new(CauseKind::Arrival, arrived)),
            SimEvent::AppMapped {
                app: 7,
                tasks: 2,
                first_node: 3,
                region_w: 1,
                region_h: 2,
                level: 1,
                hop_cost: 1.0,
                queue_wait: 0.0,
                headroom: 5.0,
            },
        );
        let fault = r.events.push(0.08, SimEvent::FaultActivated { core: 3 });
        let launch = r.events.push(
            0.09,
            SimEvent::TestLaunched {
                core: 3,
                routine: 0,
                level: 2,
                power: 0.4,
                headroom: 4.0,
            },
        );
        let detect = r.events.push_caused(
            0.1,
            Some(CauseLink::new(CauseKind::Activation, fault)),
            SimEvent::FaultDetected { core: 3, latency: 0.1 },
        );
        let completed = r.events.push_caused(
            0.1,
            Some(CauseLink::new(CauseKind::Session, launch)),
            SimEvent::TestCompleted {
                core: 3,
                routine: 0,
                level: 2,
                covered_levels: 1,
                interval: -1.0,
            },
        );
        let suspect = r.events.push_caused(
            0.1,
            Some(CauseLink::new(CauseKind::Detection, detect)),
            SimEvent::CoreSuspected { core: 3, level: 2 },
        );
        // A false alarm on a second core, later cleared by its retests.
        r.events.push_caused(
            0.2,
            Some(CauseLink::new(CauseKind::FalseAlarm, completed)),
            SimEvent::CoreSuspected { core: 5, level: 0 },
        );
        let q = r.events.push_caused(
            0.3,
            Some(CauseLink::new(CauseKind::Suspicion, suspect)),
            SimEvent::CoreQuarantined { core: 3, retests: 1 },
        );
        r.events.push_caused(
            0.3,
            Some(CauseLink::new(CauseKind::Quarantine, q)),
            SimEvent::AppRestarted { app: 7, core: 3 },
        );
        r.apps_pending = 1;
        r.apps_in_flight = 1;
        r.events.push_caused(
            0.4,
            Some(CauseLink::new(CauseKind::RetestPassed, completed)),
            SimEvent::CoreCleared { core: 5, retests: 3 },
        );
        validate_events(&r).expect("consistent response pipeline");
    }

    #[test]
    fn suspicion_inequality_is_enforced() {
        let mut r = Report::default();
        r.cores_quarantined = 1;
        r.events.push(0.3, SimEvent::CoreQuarantined { core: 3, retests: 0 });
        let err = validate_events(&r).unwrap_err();
        assert!(
            err.contains("CoreSuspected >= CoreQuarantined + CoreCleared"),
            "got: {err}"
        );
    }

    #[test]
    fn activity_on_a_quarantined_core_is_flagged() {
        let mut r = Report::default();
        r.cores_suspected = 1;
        r.cores_quarantined = 1;
        r.tests_completed = 0;
        r.tests_in_flight = 1;
        r.events.push(0.1, SimEvent::CoreSuspected { core: 2, level: 1 });
        r.events.push(0.2, SimEvent::CoreQuarantined { core: 2, retests: 1 });
        r.events.push(
            0.3,
            SimEvent::TestLaunched {
                core: 2,
                routine: 0,
                level: 1,
                power: 0.2,
                headroom: 4.0,
            },
        );
        let err = validate_events(&r).unwrap_err();
        assert!(
            err.contains("TestLaunched on quarantined core 2"),
            "got: {err}"
        );

        // Powering the core back on is flagged too; gating (to = −1) is not.
        let mut r = Report::default();
        r.cores_suspected = 1;
        r.cores_quarantined = 1;
        r.fault_activations = 1;
        r.fault_detections = 1;
        let fault = r.events.push(0.05, SimEvent::FaultActivated { core: 4 });
        let detect = r.events.push_caused(
            0.08,
            Some(CauseLink::new(CauseKind::Activation, fault)),
            SimEvent::FaultDetected { core: 4, latency: 0.03 },
        );
        let suspect = r.events.push_caused(
            0.1,
            Some(CauseLink::new(CauseKind::Detection, detect)),
            SimEvent::CoreSuspected { core: 4, level: 0 },
        );
        r.events.push_caused(
            0.2,
            Some(CauseLink::new(CauseKind::Suspicion, suspect)),
            SimEvent::CoreQuarantined { core: 4, retests: 2 },
        );
        r.events.push(0.2, SimEvent::DvfsTransition { core: 4, from: 3, to: -1 });
        validate_events(&r).expect("gating a quarantined core is fine");
        r.events.push(0.5, SimEvent::DvfsTransition { core: 4, from: -1, to: 2 });
        let err = validate_events(&r).unwrap_err();
        assert!(
            err.contains("quarantined core 4 powered back on"),
            "got: {err}"
        );
    }

    #[test]
    fn missing_cause_on_a_required_kind_is_flagged() {
        let mut r = Report::default();
        r.fault_detections = 1;
        r.events.push(0.1, SimEvent::FaultDetected { core: 2, latency: 0.05 });
        let err = validate_events(&r).unwrap_err();
        assert!(
            err.contains("FaultDetected #0 must carry a cause link"),
            "got: {err}"
        );
    }

    #[test]
    fn link_table_violations_are_flagged() {
        let mut r = Report::default();
        r.fault_activations = 1;
        r.cores_suspected = 1;
        let fault = r.events.push(0.1, SimEvent::FaultActivated { core: 2 });
        // Activation links terminate at FaultDetected, never CoreSuspected.
        r.events.push_caused(
            0.2,
            Some(CauseLink::new(CauseKind::Activation, fault)),
            SimEvent::CoreSuspected { core: 2, level: 1 },
        );
        let err = validate_events(&r).unwrap_err();
        assert!(
            err.contains("link table forbids FaultActivated -[activation]-> CoreSuspected"),
            "got: {err}"
        );
    }

    #[test]
    fn forward_and_dangling_links_are_flagged() {
        let mut r = Report::default();
        r.cap_adjustments = 1;
        r.tests_denied_power = 1;
        // A forward link (cause id >= effect id) breaks acyclicity.
        r.events.push_record(EventRecord {
            id: EventId(0),
            t: 0.1,
            cause: Some(CauseLink::new(CauseKind::CapMove, EventId(5))),
            ev: SimEvent::TestDeniedPower {
                core: 1,
                needed: 2.0,
                headroom: 1.0,
            },
        });
        r.events.push_record(EventRecord {
            id: EventId(5),
            t: 0.1,
            cause: None,
            ev: SimEvent::CapAdjusted {
                cap: 10.0,
                measured: 9.0,
                headroom: 1.0,
                reservations: 0,
            },
        });
        let err = validate_events(&r).unwrap_err();
        assert!(err.contains("cause must precede effect"), "got: {err}");

        // A dangling link (id never stored, nothing dropped) is flagged.
        let mut r = Report::default();
        r.tests_denied_power = 1;
        r.events.push_caused(
            0.1,
            Some(CauseLink::new(CauseKind::CapMove, EventId(77))),
            SimEvent::TestDeniedPower {
                core: 1,
                needed: 2.0,
                headroom: 1.0,
            },
        );
        let err = validate_events(&r).unwrap_err();
        assert!(
            err.contains("dangling cause link to #77"),
            "got: {err}"
        );
    }

    /// Pushes a fully-caused fault → detect → suspect → quarantine chain
    /// for `core` and bumps the matching aggregates; returns the
    /// `CoreQuarantined` event id for probe-lane links.
    fn quarantined(r: &mut Report, core: u32, t: f64) -> EventId {
        r.fault_activations += 1;
        r.fault_detections += 1;
        r.cores_suspected += 1;
        r.cores_quarantined += 1;
        let fault = r.events.push(t, SimEvent::FaultActivated { core });
        let detect = r.events.push_caused(
            t,
            Some(CauseLink::new(CauseKind::Activation, fault)),
            SimEvent::FaultDetected { core, latency: 0.01 },
        );
        let suspect = r.events.push_caused(
            t,
            Some(CauseLink::new(CauseKind::Detection, detect)),
            SimEvent::CoreSuspected { core, level: 1 },
        );
        r.events.push_caused(
            t,
            Some(CauseLink::new(CauseKind::Suspicion, suspect)),
            SimEvent::CoreQuarantined { core, retests: 1 },
        )
    }

    #[test]
    fn full_probe_lifecycle_passes() {
        let mut r = Report::default();
        let q = quarantined(&mut r, 6, 0.08);
        r.probes_launched = 2;
        r.cores_readmitted = 1;
        r.probe_budget = 2;
        r.tests_in_flight = 1;
        r.events.push(0.08, SimEvent::DvfsTransition { core: 6, from: 2, to: -1 });
        r.events.push_caused(
            0.12,
            Some(CauseLink::new(CauseKind::ProbeLane, q)),
            SimEvent::CoreProbeLaunched { core: 6, streak: 0, inflight: 1 },
        );
        // The lane clocks the core at the probe level: allowed while probing.
        r.events.push(0.12, SimEvent::DvfsTransition { core: 6, from: -1, to: 0 });
        let p2 = r.events.push_caused(
            0.13,
            Some(CauseLink::new(CauseKind::ProbeLane, q)),
            SimEvent::CoreProbeLaunched { core: 6, streak: 1, inflight: 1 },
        );
        r.events.push_caused(
            0.14,
            Some(CauseLink::new(CauseKind::ProbePassed, p2)),
            SimEvent::CoreReadmitted { core: 6, probes: 2 },
        );
        r.events.push(0.14, SimEvent::DvfsTransition { core: 6, from: 0, to: -1 });
        // Re-admitted: the core may power up and host tests again.
        r.events.push(0.20, SimEvent::DvfsTransition { core: 6, from: -1, to: 3 });
        r.events.push(
            0.21,
            SimEvent::TestLaunched {
                core: 6,
                routine: 0,
                level: 3,
                power: 0.4,
                headroom: 4.0,
            },
        );
        validate_events(&r).expect("full lifecycle audits clean");
    }

    #[test]
    fn requarantine_keeps_the_core_withdrawn() {
        let mut r = Report::default();
        let q = quarantined(&mut r, 4, 0.1);
        r.probes_launched = 1;
        r.cores_requarantined = 1;
        r.probe_budget = 2;
        let p = r.events.push_caused(
            0.2,
            Some(CauseLink::new(CauseKind::ProbeLane, q)),
            SimEvent::CoreProbeLaunched { core: 4, streak: 0, inflight: 1 },
        );
        r.events.push(0.2, SimEvent::DvfsTransition { core: 4, from: -1, to: 0 });
        r.events.push_caused(
            0.21,
            Some(CauseLink::new(CauseKind::ProbeFailed, p)),
            SimEvent::CoreRequarantined { core: 4, backoff: 1 },
        );
        r.events.push(0.21, SimEvent::DvfsTransition { core: 4, from: 0, to: -1 });
        validate_events(&r).expect("failed probation audits clean");
        // Powering the core up after the failed probation is a violation.
        r.events.push(0.5, SimEvent::DvfsTransition { core: 4, from: -1, to: 2 });
        let err = validate_events(&r).unwrap_err();
        assert!(
            err.contains("quarantined core 4 powered back on"),
            "got: {err}"
        );
    }

    #[test]
    fn readmission_without_quarantine_is_flagged() {
        let mut r = Report::default();
        r.cores_readmitted = 1;
        r.events.push(0.1, SimEvent::CoreReadmitted { core: 9, probes: 3 });
        let err = validate_events(&r).unwrap_err();
        assert!(
            err.contains("CoreReadmitted for never-quarantined core 9"),
            "got: {err}"
        );
        assert!(
            err.contains("CoreReadmitted <= CoreQuarantined + CoreRequarantined"),
            "got: {err}"
        );
    }

    #[test]
    fn activity_during_probation_is_flagged() {
        let mut r = Report::default();
        let q = quarantined(&mut r, 2, 0.1);
        r.probes_launched = 1;
        r.probe_budget = 1;
        r.tests_in_flight = 1;
        r.events.push_caused(
            0.2,
            Some(CauseLink::new(CauseKind::ProbeLane, q)),
            SimEvent::CoreProbeLaunched { core: 2, streak: 0, inflight: 1 },
        );
        // Probation is not re-admission: the scheduler must still stay away.
        r.events.push(
            0.25,
            SimEvent::TestLaunched {
                core: 2,
                routine: 0,
                level: 1,
                power: 0.2,
                headroom: 4.0,
            },
        );
        let err = validate_events(&r).unwrap_err();
        assert!(
            err.contains("TestLaunched on quarantined core 2"),
            "got: {err}"
        );
    }

    #[test]
    fn probe_budget_overrun_is_flagged() {
        let mut r = Report::default();
        let q = quarantined(&mut r, 3, 0.1);
        r.probes_launched = 1;
        r.probe_budget = 1;
        r.events.push_caused(
            0.2,
            Some(CauseLink::new(CauseKind::ProbeLane, q)),
            SimEvent::CoreProbeLaunched { core: 3, streak: 0, inflight: 2 },
        );
        let err = validate_events(&r).unwrap_err();
        assert!(err.contains("lane budget is 1"), "got: {err}");
    }

    #[test]
    fn checkpoint_counts_reconcile() {
        let mut r = Report::default();
        r.apps_arrived = 1;
        r.apps_in_flight = 1;
        r.apps_checkpointed = 1;
        let arrived = r.events.push(0.01, SimEvent::AppArrived { app: 1, tasks: 2 });
        let mapped = r.events.push_caused(
            0.02,
            Some(CauseLink::new(CauseKind::Arrival, arrived)),
            SimEvent::AppMapped {
                app: 1,
                tasks: 2,
                first_node: 0,
                region_w: 1,
                region_h: 2,
                level: 1,
                hop_cost: 1.0,
                queue_wait: 0.0,
                headroom: 5.0,
            },
        );
        r.events.push_caused(
            0.1,
            Some(CauseLink::new(CauseKind::Checkpoint, mapped)),
            SimEvent::AppCheckpointed { app: 1, tasks: 2, bytes: 2048 },
        );
        validate_events(&r).expect("checkpoint counts reconcile");
        r.apps_checkpointed = 2;
        let err = validate_events(&r).unwrap_err();
        assert!(
            err.contains("AppCheckpointed == apps_checkpointed"),
            "got: {err}"
        );
    }

    #[test]
    fn out_of_order_ids_are_flagged() {
        let mut r = Report::default();
        r.apps_arrived = 2;
        r.events.push_record(EventRecord {
            id: EventId(3),
            t: 0.1,
            cause: None,
            ev: SimEvent::AppArrived { app: 0, tasks: 1 },
        });
        r.events.push_record(EventRecord {
            id: EventId(2),
            t: 0.2,
            cause: None,
            ev: SimEvent::AppArrived { app: 1, tasks: 1 },
        });
        let err = validate_events(&r).unwrap_err();
        assert!(
            err.contains("event ids must be strictly increasing"),
            "got: {err}"
        );
    }
}
