//! Online statistics helpers used by the metrics layer.

use serde::{Deserialize, Serialize};

/// Welford-style online mean/variance plus min/max.
///
/// # Examples
///
/// ```
/// use manytest_sim::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.max(), Some(3.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: Option<f64>,
    max: Option<f64>,
    sum: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.mean = (n1 * self.mean + n2 * other.mean) / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// Fixed-bin histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, `lo >= hi`, or either bound is non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid range");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one sample.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Lower bound of the binned range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the binned range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count of samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of samples at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded samples including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// inside the bucket that contains the target rank.
    ///
    /// Underflow samples are pinned to `lo` and overflow samples to `hi`
    /// (the histogram does not retain their exact values). Returns `None`
    /// for an empty histogram or a `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.total();
        if total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // Rank of the target sample, 1-based, clamped into [1, total].
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = self.underflow;
        if rank <= seen {
            return Some(self.lo);
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            if rank <= seen + c {
                // Interpolate within the bucket by the fraction of its
                // samples at or below the target rank.
                let frac = (rank - seen) as f64 / c as f64;
                return Some(self.lo + w * (i as f64 + frac));
            }
            seen += c;
        }
        Some(self.hi)
    }

    /// Median estimate; see [`Histogram::quantile`].
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate; see [`Histogram::quantile`].
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate; see [`Histogram::quantile`].
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// `(bin_center, count)` pairs, for plotting.
    pub fn centers(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + w * (i as f64 + 0.5), c))
    }
}

/// Time-weighted average of a piecewise-constant signal (e.g. power,
/// number-of-active-cores) sampled at irregular instants.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_t: Option<f64>,
    last_v: f64,
    weighted_sum: f64,
    span: f64,
    peak: Option<f64>,
}

impl TimeWeighted {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the signal took value `v` starting at time `t` (seconds).
    ///
    /// The value is held constant until the next `record` call.
    ///
    /// # Panics
    ///
    /// Panics if `t` moves backwards.
    pub fn record(&mut self, t: f64, v: f64) {
        if let Some(last_t) = self.last_t {
            assert!(t >= last_t, "time must be monotone");
            let dt = t - last_t;
            self.weighted_sum += self.last_v * dt;
            self.span += dt;
        }
        self.last_t = Some(t);
        self.last_v = v;
        self.peak = Some(self.peak.map_or(v, |p: f64| p.max(v)));
    }

    /// Closes the signal at time `t` without starting a new segment.
    pub fn finish(&mut self, t: f64) {
        self.record(t, self.last_v);
    }

    /// Time-weighted mean over the recorded span (0 if the span is empty).
    pub fn mean(&self) -> f64 {
        if self.span > 0.0 {
            self.weighted_sum / self.span
        } else {
            0.0
        }
    }

    /// Largest recorded value, if any.
    pub fn peak(&self) -> Option<f64> {
        self.peak
    }

    /// Total observed span in seconds.
    pub fn span(&self) -> f64 {
        self.span
    }

    /// Integral of the signal over the span (`mean × span`), e.g. energy in
    /// joules when the signal is power in watts.
    pub fn integral(&self) -> f64 {
        self.weighted_sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic_moments() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(-0.1);
        h.push(0.0);
        h.push(9.999);
        h.push(10.0);
        h.push(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_centers() {
        let h = Histogram::new(0.0, 4.0, 4);
        let centers: Vec<f64> = h.centers().map(|(c, _)| c).collect();
        assert_eq!(centers, vec![0.5, 1.5, 2.5, 3.5]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        // 100 samples spread uniformly over [0, 10): quantiles should land
        // close to the ideal uniform quantiles.
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.push(i as f64 * 0.1);
        }
        let p50 = h.p50().unwrap();
        let p95 = h.p95().unwrap();
        let p99 = h.p99().unwrap();
        assert!((p50 - 5.0).abs() < 0.2, "p50 = {p50}");
        assert!((p95 - 9.5).abs() < 0.2, "p95 = {p95}");
        assert!((p99 - 9.9).abs() < 0.2, "p99 = {p99}");
        assert!(p50 < p95 && p95 < p99);
    }

    #[test]
    fn histogram_quantiles_empty_and_bounds() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), None);
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(0.5);
        assert_eq!(h.quantile(-0.1), None);
        assert_eq!(h.quantile(1.1), None);
        assert!(h.quantile(0.0).is_some());
        assert!(h.quantile(1.0).is_some());
    }

    #[test]
    fn histogram_quantiles_pin_out_of_range_samples() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for _ in 0..10 {
            h.push(-5.0); // underflow, pinned to lo
        }
        for _ in 0..10 {
            h.push(50.0); // overflow, pinned to hi
        }
        assert_eq!(h.quantile(0.25), Some(0.0));
        assert_eq!(h.quantile(0.95), Some(10.0));
    }

    #[test]
    fn histogram_single_bucket_median() {
        let mut h = Histogram::new(0.0, 1.0, 1);
        for _ in 0..4 {
            h.push(0.5);
        }
        // All mass in one bucket: the median interpolates to the middle
        // of the occupied fraction.
        let p50 = h.p50().unwrap();
        assert!((0.0..=1.0).contains(&p50));
    }

    #[test]
    fn time_weighted_mean_of_step_signal() {
        let mut tw = TimeWeighted::new();
        tw.record(0.0, 10.0); // 10 W for 2 s
        tw.record(2.0, 0.0); // 0 W for 2 s
        tw.finish(4.0);
        assert!((tw.mean() - 5.0).abs() < 1e-12);
        assert_eq!(tw.peak(), Some(10.0));
        assert!((tw.span() - 4.0).abs() < 1e-12);
        assert!((tw.integral() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_empty_is_zero() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.mean(), 0.0);
        assert_eq!(tw.peak(), None);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn time_weighted_rejects_backwards_time() {
        let mut tw = TimeWeighted::new();
        tw.record(5.0, 1.0);
        tw.record(4.0, 1.0);
    }
}
