impl System {
    pub fn control(&mut self) {
        self.probe_lane();
        // lint:allow(hot-path-purity, reason = "fixture: reviewed steady-state append into reused capacity")
        self.scratch.push(1);
    }

    fn probe_lane(&mut self) {
        self.launch_probe();
    }

    // lint:effect(alloc, reason = "fixture: the probe lane owns its staging allocation by design")
    fn launch_probe(&mut self) {
        stage_buffer(8);
    }
}

fn stage_buffer(n: usize) -> Vec<u32> {
    vec![0; n]
}
