//! SARIF 2.1.0 rendering.
//!
//! CI uploads `lint.sarif` through `github/codeql-action/upload-sarif`
//! so findings annotate pull requests inline. The document is built by
//! deterministic string concatenation — keys in a fixed order, findings
//! pre-sorted by the engine — so the same findings always render to the
//! same bytes (the cold-vs-warm cache test relies on this).

use crate::diag::{escape, Finding};
use crate::rules::{registry, META_RULES};

const SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Descriptions for the engine's own audit rules, which are not `Rule`
/// impls and so are absent from the registry.
fn meta_description(id: &str) -> &'static str {
    match id {
        "unused-allow" => "a lint:allow that suppresses nothing is itself an error",
        "malformed-allow" => "lint:allow comments must parse and name a known rule",
        "malformed-effect" => "lint:effect annotations must parse and use a known spec",
        _ => "engine audit",
    }
}

/// Renders findings as a SARIF 2.1.0 document. Paths are workspace-
/// relative under the `SRCROOT` uri base; columns count Unicode code
/// points (matching the lexer's column accounting).
pub fn render_sarif(findings: &[Finding]) -> String {
    let rules: Vec<(String, String)> = registry()
        .iter()
        .map(|r| (r.id().to_string(), r.description().to_string()))
        .chain(
            META_RULES
                .iter()
                .map(|&id| (id.to_string(), meta_description(id).to_string())),
        )
        .collect();
    let rule_index =
        |id: &str| rules.iter().position(|(rid, _)| rid == id).unwrap_or(0);

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"$schema\": \"{SCHEMA}\",\n"));
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"manytest-lint\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/manytest\",\n");
    out.push_str(&format!(
        "          \"version\": \"{}\",\n",
        env!("CARGO_PKG_VERSION")
    ));
    out.push_str("          \"rules\": [\n");
    for (i, (id, desc)) in rules.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}\n",
            escape(id),
            escape(desc),
            if i + 1 == rules.len() { "" } else { "," }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"columnKind\": \"unicodeCodePoints\",\n");
    out.push_str(
        "      \"originalUriBaseIds\": {\"SRCROOT\": {\"uri\": \"file:///\"}},\n",
    );
    out.push_str("      \"results\": [");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("        {\n");
        out.push_str(&format!("          \"ruleId\": \"{}\",\n", escape(f.rule)));
        out.push_str(&format!(
            "          \"ruleIndex\": {},\n",
            rule_index(f.rule)
        ));
        out.push_str("          \"level\": \"error\",\n");
        out.push_str(&format!(
            "          \"message\": {{\"text\": \"{}\"}},\n",
            escape(&f.message)
        ));
        out.push_str("          \"locations\": [\n");
        out.push_str("            {\n              \"physicalLocation\": {\n");
        out.push_str(&format!(
            "                \"artifactLocation\": {{\"uri\": \"{}\", \"uriBaseId\": \"SRCROOT\"}},\n",
            escape(&f.file)
        ));
        out.push_str(&format!(
            "                \"region\": {{\"startLine\": {}, \"startColumn\": {}}}\n",
            f.line, f.col
        ));
        out.push_str("              }\n            }\n          ]\n        }");
    }
    out.push_str(if findings.is_empty() {
        "]\n"
    } else {
        "\n      ]\n"
    });
    out.push_str("    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn finding() -> Finding {
        Finding {
            rule: "wall-clock",
            file: "crates/sim/src/time.rs".into(),
            line: 3,
            col: 9,
            message: "Instant outside crates/bench".into(),
            rationale: "wall-clock reads break replay",
        }
    }

    #[test]
    fn sarif_parses_and_carries_schema_and_location() {
        let doc = json::parse(&render_sarif(&[finding()])).expect("valid JSON");
        assert_eq!(doc.get("$schema").and_then(|v| v.as_str()), Some(SCHEMA));
        assert_eq!(doc.get("version").and_then(|v| v.as_str()), Some("2.1.0"));
        let run = &doc.get("runs").and_then(|v| v.as_arr()).unwrap()[0];
        let results = run.get("results").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(results.len(), 1);
        let loc = &results[0].get("locations").and_then(|v| v.as_arr()).unwrap()[0];
        let region = loc
            .get("physicalLocation")
            .and_then(|p| p.get("region"))
            .unwrap();
        assert_eq!(region.get("startLine").and_then(|v| v.as_num()), Some(3.0));
    }

    #[test]
    fn rule_index_points_at_the_matching_rule() {
        let doc = json::parse(&render_sarif(&[finding()])).expect("valid JSON");
        let run = &doc.get("runs").and_then(|v| v.as_arr()).unwrap()[0];
        let rules = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(|v| v.as_arr())
            .unwrap();
        let result = &run.get("results").and_then(|v| v.as_arr()).unwrap()[0];
        let idx = result.get("ruleIndex").and_then(|v| v.as_num()).unwrap() as usize;
        assert_eq!(
            rules[idx].get("id").and_then(|v| v.as_str()),
            Some("wall-clock")
        );
    }

    #[test]
    fn empty_findings_render_an_empty_results_array() {
        let doc = json::parse(&render_sarif(&[])).expect("valid JSON");
        let run = &doc.get("runs").and_then(|v| v.as_arr()).unwrap()[0];
        assert_eq!(
            run.get("results").and_then(|v| v.as_arr()).map(<[_]>::len),
            Some(0)
        );
    }
}
