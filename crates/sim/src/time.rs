//! Strongly typed simulation time.
//!
//! All simulation time is kept in integer **nanoseconds** so that event
//! ordering is exact and runs are reproducible across platforms; floating
//! point only appears at the edges (seconds for reporting, rates for models).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point in simulated time, in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use manytest_sim::time::{Duration, SimTime};
///
/// let t = SimTime::from_ms(2) + Duration::from_us(500);
/// assert_eq!(t.as_ns(), 2_500_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use manytest_sim::time::Duration;
///
/// let d = Duration::from_us(3) * 4;
/// assert_eq!(d.as_ns(), 12_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(u64);

/// Index of a fixed-size control epoch.
///
/// The power manager, runtime mapper and test scheduler all run once per
/// epoch; [`Epoch`] is the discrete clock of those control loops.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Epoch(pub u64);

impl SimTime {
    /// The simulation origin (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time; used as an "infinite" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanosecond count.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// This time expressed in (floating point) seconds; for reporting only.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The epoch this instant falls in, for epochs of length `epoch_len`.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len` is zero.
    pub fn epoch(self, epoch_len: Duration) -> Epoch {
        assert!(epoch_len.0 > 0, "epoch length must be positive");
        Epoch(self.0 / epoch_len.0)
    }
}

impl Duration {
    /// The empty duration.
    pub const ZERO: Duration = Duration(0);
    /// The maximum representable duration; used as an "infinite" sentinel.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Duration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Creates a duration from floating point seconds, rounding to the
    /// nearest nanosecond and saturating at the representable range.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            return Duration::ZERO;
        }
        let ns = (secs * 1e9).round();
        if ns >= u64::MAX as f64 {
            Duration::MAX
        } else {
            Duration(ns as u64)
        }
    }

    /// Raw nanosecond count.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// This duration expressed in (floating point) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Integer division rounding up; how many `chunk`s cover this duration.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn div_ceil(self, chunk: Duration) -> u64 {
        assert!(chunk.0 > 0, "chunk must be positive");
        self.0.div_ceil(chunk.0)
    }
}

impl Epoch {
    /// First epoch.
    pub const ZERO: Epoch = Epoch(0);

    /// The next epoch.
    pub const fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }

    /// Start time of this epoch for epochs of length `epoch_len`.
    pub fn start(self, epoch_len: Duration) -> SimTime {
        SimTime(self.0 * epoch_len.0)
    }

    /// End time (exclusive) of this epoch for epochs of length `epoch_len`.
    pub fn end(self, epoch_len: Duration) -> SimTime {
        SimTime((self.0 + 1) * epoch_len.0)
    }

    /// Raw epoch index.
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "epoch#{}", self.0)
    }
}

impl From<Duration> for SimTime {
    fn from(d: Duration) -> SimTime {
        SimTime(d.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimTime::from_us(1).as_ns(), 1_000);
        assert_eq!(SimTime::from_ms(1).as_ns(), 1_000_000);
        assert_eq!(SimTime::from_secs(1).as_ns(), 1_000_000_000);
        assert_eq!(Duration::from_us(2).as_ns(), 2_000);
        assert_eq!(Duration::from_ms(2).as_ns(), 2_000_000);
        assert_eq!(Duration::from_secs(2).as_ns(), 2_000_000_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t0 = SimTime::from_ms(10);
        let d = Duration::from_us(250);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1 - d, t0);
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_ms(1);
        let late = SimTime::from_ms(5);
        assert_eq!(early - late, Duration::ZERO);
        assert_eq!(early.since(late), Duration::ZERO);
        assert_eq!(Duration::from_ns(3) - Duration::from_ns(10), Duration::ZERO);
    }

    #[test]
    fn epoch_boundaries() {
        let len = Duration::from_ms(1);
        assert_eq!(SimTime::ZERO.epoch(len), Epoch(0));
        assert_eq!(SimTime::from_ns(999_999).epoch(len), Epoch(0));
        assert_eq!(SimTime::from_ms(1).epoch(len), Epoch(1));
        assert_eq!(Epoch(3).start(len), SimTime::from_ms(3));
        assert_eq!(Epoch(3).end(len), SimTime::from_ms(4));
    }

    #[test]
    #[should_panic(expected = "epoch length must be positive")]
    fn zero_epoch_len_panics() {
        let _ = SimTime::ZERO.epoch(Duration::ZERO);
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(1e-9), Duration::from_ns(1));
        assert_eq!(Duration::from_secs_f64(0.5).as_ns(), 500_000_000);
        assert_eq!(Duration::from_secs_f64(f64::MAX), Duration::MAX);
    }

    #[test]
    fn div_ceil_covers() {
        let d = Duration::from_ns(10);
        assert_eq!(d.div_ceil(Duration::from_ns(3)), 4);
        assert_eq!(d.div_ceil(Duration::from_ns(5)), 2);
        assert_eq!(Duration::ZERO.div_ceil(Duration::from_ns(5)), 0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SimTime::from_ms(1)).is_empty());
        assert!(!format!("{}", Duration::from_ms(1)).is_empty());
        assert!(!format!("{}", Epoch(7)).is_empty());
    }

    #[test]
    fn epoch_next_and_index() {
        assert_eq!(Epoch::ZERO.next(), Epoch(1));
        assert_eq!(Epoch(41).next().index(), 42);
    }

    #[test]
    fn saturating_add_at_max() {
        assert_eq!(SimTime::MAX + Duration::from_ns(1), SimTime::MAX);
        assert_eq!(Duration::MAX + Duration::from_ns(1), Duration::MAX);
    }
}
