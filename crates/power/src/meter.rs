//! Per-category power/energy accounting.
//!
//! The evaluation needs to answer questions like "what fraction of consumed
//! power went to testing?" (the TC'16 abstract says ≈ 2 %). [`PowerMeter`]
//! accumulates energy per [`PowerCategory`] over epochs and exposes both the
//! per-epoch snapshot (for traces) and the run-long totals.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What a joule was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerCategory {
    /// Application task execution.
    Workload,
    /// SBST test routine execution.
    Test,
    /// Idle-but-clocked cores.
    Idle,
    /// NoC transport (links + routers).
    Noc,
}

impl PowerCategory {
    /// All categories, in reporting order.
    pub const ALL: [PowerCategory; 4] = [
        PowerCategory::Workload,
        PowerCategory::Test,
        PowerCategory::Idle,
        PowerCategory::Noc,
    ];

    fn index(self) -> usize {
        match self {
            PowerCategory::Workload => 0,
            PowerCategory::Test => 1,
            PowerCategory::Idle => 2,
            PowerCategory::Noc => 3,
        }
    }
}

impl fmt::Display for PowerCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PowerCategory::Workload => "workload",
            PowerCategory::Test => "test",
            PowerCategory::Idle => "idle",
            PowerCategory::Noc => "noc",
        };
        f.write_str(s)
    }
}

/// Accumulates energy per category; epoch-scoped and run-scoped.
///
/// # Examples
///
/// ```
/// use manytest_power::meter::{PowerCategory, PowerMeter};
///
/// let mut meter = PowerMeter::new();
/// meter.add(PowerCategory::Workload, 40.0, 0.001); // 40 W for 1 ms
/// meter.add(PowerCategory::Test, 2.0, 0.001);
/// assert!((meter.epoch_power(0.001) - 42.0).abs() < 1e-9);
/// let share = meter.total_share(PowerCategory::Test);
/// assert!((share - 2.0 / 42.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerMeter {
    epoch_joules: [f64; 4],
    total_joules: [f64; 4],
    total_seconds: f64,
    peak_epoch_power: f64,
}

impl PowerMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `watts` drawn for `seconds` to `category` in the current
    /// epoch.
    ///
    /// # Panics
    ///
    /// Panics if `watts` or `seconds` is negative.
    pub fn add(&mut self, category: PowerCategory, watts: f64, seconds: f64) {
        assert!(watts >= 0.0 && seconds >= 0.0, "negative power or time");
        let joules = watts * seconds;
        self.epoch_joules[category.index()] += joules;
        self.total_joules[category.index()] += joules;
    }

    /// Charges an instantaneous energy amount (e.g. one NoC message) to
    /// `category` in the current epoch.
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative.
    pub fn add_energy(&mut self, category: PowerCategory, joules: f64) {
        assert!(joules >= 0.0, "negative energy");
        self.epoch_joules[category.index()] += joules;
        self.total_joules[category.index()] += joules;
    }

    /// Energy charged to `category` in the current epoch, joules.
    pub fn epoch_energy(&self, category: PowerCategory) -> f64 {
        self.epoch_joules[category.index()]
    }

    /// Mean power over the current epoch of length `epoch_seconds`, watts.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_seconds` is not positive.
    pub fn epoch_power(&self, epoch_seconds: f64) -> f64 {
        assert!(epoch_seconds > 0.0, "epoch length must be positive");
        self.epoch_joules.iter().sum::<f64>() / epoch_seconds
    }

    /// Mean power of one category over the current epoch, watts.
    pub fn epoch_category_power(&self, category: PowerCategory, epoch_seconds: f64) -> f64 {
        assert!(epoch_seconds > 0.0, "epoch length must be positive");
        self.epoch_joules[category.index()] / epoch_seconds
    }

    /// Ends the epoch: folds the epoch bucket into the run totals, records
    /// the epoch's mean power for the peak statistic and clears the epoch
    /// bucket.
    pub fn roll_epoch(&mut self, epoch_seconds: f64) {
        let p = self.epoch_power(epoch_seconds);
        self.peak_epoch_power = self.peak_epoch_power.max(p);
        self.total_seconds += epoch_seconds;
        self.epoch_joules = [0.0; 4];
    }

    /// Total energy charged to `category` over the whole run, joules.
    pub fn total_energy(&self, category: PowerCategory) -> f64 {
        self.total_joules[category.index()]
    }

    /// Total energy over all categories, joules.
    pub fn total_energy_all(&self) -> f64 {
        self.total_joules.iter().sum()
    }

    /// Fraction of all consumed energy that went to `category` (0 if the
    /// meter is empty).
    pub fn total_share(&self, category: PowerCategory) -> f64 {
        let all = self.total_energy_all();
        if all > 0.0 {
            self.total_joules[category.index()] / all
        } else {
            0.0
        }
    }

    /// Run-long mean power, watts (0 before the first `roll_epoch`).
    pub fn mean_power(&self) -> f64 {
        if self.total_seconds > 0.0 {
            self.total_energy_all() / self.total_seconds
        } else {
            0.0
        }
    }

    /// Highest epoch-mean power seen so far, watts.
    pub fn peak_epoch_power(&self) -> f64 {
        self.peak_epoch_power
    }

    /// Total metered time, seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_energy() {
        let mut m = PowerMeter::new();
        m.add(PowerCategory::Workload, 10.0, 2.0);
        m.add(PowerCategory::Workload, 5.0, 2.0);
        assert_eq!(m.epoch_energy(PowerCategory::Workload), 30.0);
        assert_eq!(m.total_energy(PowerCategory::Workload), 30.0);
    }

    #[test]
    fn categories_are_independent() {
        let mut m = PowerMeter::new();
        m.add(PowerCategory::Test, 1.0, 1.0);
        m.add(PowerCategory::Noc, 2.0, 1.0);
        assert_eq!(m.epoch_energy(PowerCategory::Test), 1.0);
        assert_eq!(m.epoch_energy(PowerCategory::Noc), 2.0);
        assert_eq!(m.epoch_energy(PowerCategory::Idle), 0.0);
    }

    #[test]
    fn roll_epoch_clears_epoch_but_keeps_totals() {
        let mut m = PowerMeter::new();
        m.add(PowerCategory::Workload, 50.0, 0.001);
        m.roll_epoch(0.001);
        assert_eq!(m.epoch_energy(PowerCategory::Workload), 0.0);
        assert!((m.total_energy(PowerCategory::Workload) - 0.05).abs() < 1e-12);
        assert!((m.mean_power() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn peak_tracks_hottest_epoch() {
        let mut m = PowerMeter::new();
        m.add(PowerCategory::Workload, 30.0, 0.001);
        m.roll_epoch(0.001);
        m.add(PowerCategory::Workload, 70.0, 0.001);
        m.roll_epoch(0.001);
        m.add(PowerCategory::Workload, 10.0, 0.001);
        m.roll_epoch(0.001);
        assert!((m.peak_epoch_power() - 70.0).abs() < 1e-9);
        assert!((m.mean_power() - (30.0 + 70.0 + 10.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn shares_sum_to_one() {
        let mut m = PowerMeter::new();
        m.add(PowerCategory::Workload, 40.0, 1.0);
        m.add(PowerCategory::Test, 2.0, 1.0);
        m.add(PowerCategory::Idle, 5.0, 1.0);
        m.add(PowerCategory::Noc, 3.0, 1.0);
        let sum: f64 = PowerCategory::ALL
            .iter()
            .map(|&c| m.total_share(c))
            .sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_meter_is_zero_everywhere() {
        let m = PowerMeter::new();
        assert_eq!(m.mean_power(), 0.0);
        assert_eq!(m.total_share(PowerCategory::Test), 0.0);
        assert_eq!(m.peak_epoch_power(), 0.0);
        assert_eq!(m.total_seconds(), 0.0);
    }

    #[test]
    #[should_panic(expected = "negative power or time")]
    fn negative_add_panics() {
        PowerMeter::new().add(PowerCategory::Idle, -1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "epoch length must be positive")]
    fn zero_epoch_power_panics() {
        PowerMeter::new().epoch_power(0.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(PowerCategory::Test.to_string(), "test");
        assert_eq!(PowerCategory::Workload.to_string(), "workload");
    }
}
