//! `golden-schema`: the golden JSONs must parse, their kind keys must be
//! a subset of the `SimEvent` enum, the probe ids the docs reference
//! must exist in `crates/bench/src/events.rs`, and any `manytest_*`
//! metric name the docs quote must be declared in `METRIC_KEYS`
//! (`crates/bench/src/report.rs`).
//!
//! Perfetto exports (`*.trace.json`, in the golden dir or a generated
//! `report/` directory) speak the Chrome trace-event schema instead:
//! every entry needs `name`/`ph`/`pid`/`tid`, the phase letter must be
//! one of `M`/`X`/`i`/`s`/`f` with its letter-specific fields (`dur` on
//! slices, `id` on flows, `bp` on flow finishes), and every flow start
//! must pair with a finish — a half-arrow renders as nothing in the UI,
//! silently hiding a causal link.
//!
//! One golden file speaks a different schema: `kernels_baseline.json`
//! (the scaling gate) pins phase-profile counters per mesh edge, so its
//! keys must be `g<edge>.<counter>` with `<counter>` a real
//! `PhaseProfile` field — the same staleness protection, different
//! vocabulary.
//!
//! Run-ledger manifests (committed fixtures under
//! `crates/bench/tests/fixtures/manifests/` and any locally generated
//! `runs/manifests/` ledger) must carry every key in
//! `MANIFEST_REQUIRED_KEYS` (`crates/bench/src/ledger.rs`), declare the
//! current manifest schema string, use a 16-digit lowercase-hex
//! `config_hash`, a known `outcome`, and — when they name a `probe` —
//! one that exists in `PROBE_IDS`. A malformed manifest silently
//! disappears from `runs list`/`runs show` and from the regress watch's
//! ledger history, so the lint fails loudly instead.
//!
//! The golden per-kind count gate only protects the repo while the
//! golden files themselves are well-formed and speak the same schema as
//! the event enum — a typo'd kind key would silently never match
//! anything. The doc halves catch drift the other way: `repro explain
//! e11`-style commands quoted in README/EXPERIMENTS must name probes the
//! binary actually knows, and a documented Prometheus metric that the
//! report renderer no longer emits would silently break scrapes.

use super::event_coverage::enum_variants;
use super::Rule;
use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::source::Workspace;

pub struct GoldenSchema;

const OBS_FILE: &str = "crates/sim/src/obs.rs";
const EVENTS_FILE: &str = "crates/bench/src/events.rs";
const REPORT_FILE: &str = "crates/bench/src/report.rs";
const LEDGER_FILE: &str = "crates/bench/src/ledger.rs";
const GOLDEN_DIR: &str = "crates/bench/tests/golden";
const MANIFEST_DIRS: [&str; 2] = ["crates/bench/tests/fixtures/manifests", "runs/manifests"];
const DOC_FILES: [&str; 2] = ["README.md", "EXPERIMENTS.md"];

/// Workspace crate names in path form — `manytest_sim::…` in a doc is a
/// Rust path, not a metric reference.
const CRATE_NAMES: [&str; 10] = [
    "manytest_sim",
    "manytest_core",
    "manytest_bench",
    "manytest_lint",
    "manytest_power",
    "manytest_noc",
    "manytest_aging",
    "manytest_map",
    "manytest_sbst",
    "manytest_workload",
];

impl Rule for GoldenSchema {
    fn id(&self) -> &'static str {
        "golden-schema"
    }

    fn description(&self) -> &'static str {
        "golden JSONs must parse with SimEvent kind keys; doc probe ids and metric names must exist"
    }

    fn check_workspace(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let kinds: Vec<String> = ws
            .file(OBS_FILE)
            .map(|obs| {
                enum_variants(obs, "SimEvent")
                    .into_iter()
                    .map(|t| t.text)
                    .collect()
            })
            .unwrap_or_default();
        let counters: Vec<String> = ws
            .file(OBS_FILE)
            .map(|obs| struct_fields(obs, "PhaseProfile"))
            .unwrap_or_default();
        let probe_ids = string_array(ws, EVENTS_FILE, "PROBE_IDS");
        self.check_golden_files(ws, &kinds, &counters, &probe_ids, out);
        self.check_trace_files(ws, out);
        self.check_manifest_files(ws, &probe_ids, out);
        self.check_doc_probe_ids(ws, &probe_ids, out);
        self.check_doc_metric_keys(ws, &string_array(ws, REPORT_FILE, "METRIC_KEYS"), out);
    }
}

impl GoldenSchema {
    fn check_golden_files(
        &self,
        ws: &Workspace,
        kinds: &[String],
        counters: &[String],
        probe_ids: &Option<Vec<String>>,
        out: &mut Vec<Finding>,
    ) {
        let dir = ws.root.join(GOLDEN_DIR);
        let Ok(entries) = std::fs::read_dir(&dir) else {
            return; // no golden gate in this tree
        };
        let mut paths: Vec<_> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect();
        paths.sort();
        for path in paths {
            let file_name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if file_name.ends_with(".trace.json") {
                continue; // Perfetto schema; handled by check_trace_files
            }
            let rel = format!("{GOLDEN_DIR}/{file_name}");
            let Ok(text) = std::fs::read_to_string(&path) else {
                out.push(Finding {
                    rule: self.id(),
                    file: rel,
                    line: 1,
                    col: 1,
                    message: "golden file is unreadable".into(),
                    rationale: GOLDEN_RATIONALE,
                });
                continue;
            };
            match parse_flat_object(&text) {
                Err((line, col, msg)) => out.push(Finding {
                    rule: self.id(),
                    file: rel.clone(),
                    line,
                    col,
                    message: format!("golden file does not parse: {msg}"),
                    rationale: GOLDEN_RATIONALE,
                }),
                Ok(entries) => {
                    let is_kernels_baseline = file_name == "kernels_baseline.json";
                    for (key, line, col) in entries {
                        if is_kernels_baseline {
                            if !counters.is_empty() && !is_kernels_key(&key, counters) {
                                out.push(Finding {
                                    rule: self.id(),
                                    file: rel.clone(),
                                    line,
                                    col,
                                    message: format!(
                                        "scaling key `{key}` is not \
                                         `g<edge>.<PhaseProfile counter>`"
                                    ),
                                    rationale: GOLDEN_RATIONALE,
                                });
                            }
                        } else if !kinds.is_empty() && !kinds.contains(&key) {
                            out.push(Finding {
                                rule: self.id(),
                                file: rel.clone(),
                                line,
                                col,
                                message: format!(
                                    "kind key `{key}` is not a SimEvent variant"
                                ),
                                rationale: GOLDEN_RATIONALE,
                            });
                        }
                    }
                }
            }
            // `e3.quick.json` → probe id `e3` must be a known probe. The
            // kernels baseline is keyed by mesh edge, not probe id.
            if file_name == "kernels_baseline.json" {
                continue;
            }
            if let Some(ids) = probe_ids {
                let stem = file_name.split('.').next().unwrap_or_default();
                if !stem.is_empty() && !ids.iter().any(|i| i == stem) {
                    out.push(Finding {
                        rule: self.id(),
                        file: rel,
                        line: 1,
                        col: 1,
                        message: format!(
                            "golden file is named for unknown probe id `{stem}`"
                        ),
                        rationale: GOLDEN_RATIONALE,
                    });
                }
            }
        }
    }

    /// Validates every Perfetto export (`*.trace.json`) found in the
    /// golden dir or a generated `report/` directory against the Chrome
    /// trace-event schema the `repro trace` writer promises.
    fn check_trace_files(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for dir in [GOLDEN_DIR, "report"] {
            let Ok(entries) = std::fs::read_dir(ws.root.join(dir)) else {
                continue;
            };
            let mut paths: Vec<_> = entries
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| {
                    p.file_name()
                        .is_some_and(|n| n.to_string_lossy().ends_with(".trace.json"))
                })
                .collect();
            paths.sort();
            for path in paths {
                let file_name = path
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                let rel = format!("{dir}/{file_name}");
                let Ok(text) = std::fs::read_to_string(&path) else {
                    out.push(Finding {
                        rule: self.id(),
                        file: rel,
                        line: 1,
                        col: 1,
                        message: "trace file is unreadable".into(),
                        rationale: TRACE_RATIONALE,
                    });
                    continue;
                };
                for (line, msg) in validate_perfetto(&text) {
                    out.push(Finding {
                        rule: self.id(),
                        file: rel.clone(),
                        line,
                        col: 1,
                        message: msg,
                        rationale: TRACE_RATIONALE,
                    });
                }
            }
        }
    }

    /// Validates every run-ledger manifest found in the committed
    /// fixture directory or a locally generated `runs/manifests/`
    /// ledger: required key set, schema string, config-hash format,
    /// outcome vocabulary, and probe ids.
    fn check_manifest_files(
        &self,
        ws: &Workspace,
        probe_ids: &Option<Vec<String>>,
        out: &mut Vec<Finding>,
    ) {
        let required = string_array(ws, LEDGER_FILE, "MANIFEST_REQUIRED_KEYS");
        let schema = string_const(ws, LEDGER_FILE, "MANIFEST_SCHEMA");
        for dir in MANIFEST_DIRS {
            let Ok(entries) = std::fs::read_dir(ws.root.join(dir)) else {
                continue;
            };
            let mut paths: Vec<_> = entries
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|e| e == "json"))
                .collect();
            paths.sort();
            for path in paths {
                let file_name = path
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                let rel = format!("{dir}/{file_name}");
                let Ok(text) = std::fs::read_to_string(&path) else {
                    out.push(Finding {
                        rule: self.id(),
                        file: rel,
                        line: 1,
                        col: 1,
                        message: "manifest is unreadable".into(),
                        rationale: MANIFEST_RATIONALE,
                    });
                    continue;
                };
                let entries = match parse_manifest_object(&text) {
                    Err((line, col, msg)) => {
                        out.push(Finding {
                            rule: self.id(),
                            file: rel,
                            line,
                            col,
                            message: format!("manifest does not parse: {msg}"),
                            rationale: MANIFEST_RATIONALE,
                        });
                        continue;
                    }
                    Ok(entries) => entries,
                };
                let value_of = |name: &str| {
                    entries
                        .iter()
                        .find(|(k, _, _, _)| k == name)
                        .map(|(_, v, line, col)| (v.clone(), *line, *col))
                };
                if let Some(req) = &required {
                    for key in req {
                        if value_of(key).is_none() {
                            out.push(Finding {
                                rule: self.id(),
                                file: rel.clone(),
                                line: 1,
                                col: 1,
                                message: format!("manifest is missing required key `{key}`"),
                                rationale: MANIFEST_RATIONALE,
                            });
                        }
                    }
                }
                if let (Some(want), Some((got, line, col))) = (&schema, value_of("schema")) {
                    if got.as_deref() != Some(want.as_str()) {
                        out.push(Finding {
                            rule: self.id(),
                            file: rel.clone(),
                            line,
                            col,
                            message: format!(
                                "manifest schema is {got:?}, expected `{want}` \
                                 (MANIFEST_SCHEMA in {LEDGER_FILE})"
                            ),
                            rationale: MANIFEST_RATIONALE,
                        });
                    }
                }
                if let Some((Some(hash), line, col)) = value_of("config_hash") {
                    let ok = hash.len() == 16
                        && hash
                            .chars()
                            .all(|c| c.is_ascii_digit() || ('a'..='f').contains(&c));
                    if !ok {
                        out.push(Finding {
                            rule: self.id(),
                            file: rel.clone(),
                            line,
                            col,
                            message: format!(
                                "config_hash `{hash}` is not 16 lowercase hex digits"
                            ),
                            rationale: MANIFEST_RATIONALE,
                        });
                    }
                }
                if let Some((Some(outcome), line, col)) = value_of("outcome") {
                    if !["ok", "cached", "failed"].contains(&outcome.as_str()) {
                        out.push(Finding {
                            rule: self.id(),
                            file: rel.clone(),
                            line,
                            col,
                            message: format!(
                                "manifest outcome `{outcome}` is not one of ok/cached/failed"
                            ),
                            rationale: MANIFEST_RATIONALE,
                        });
                    }
                }
                if let (Some(ids), Some((Some(probe), line, col))) =
                    (probe_ids, value_of("probe"))
                {
                    if !ids.iter().any(|i| *i == probe) {
                        out.push(Finding {
                            rule: self.id(),
                            file: rel.clone(),
                            line,
                            col,
                            message: format!(
                                "manifest probe `{probe}` is not in PROBE_IDS ({EVENTS_FILE})"
                            ),
                            rationale: MANIFEST_RATIONALE,
                        });
                    }
                }
            }
        }
    }

    /// `explain`/`report`/`trace`/`diff <id>` commands quoted in the
    /// docs must name real probes. `diff` takes up to two ids, so after
    /// a valid first id the following word is checked too.
    fn check_doc_probe_ids(
        &self,
        ws: &Workspace,
        probe_ids: &Option<Vec<String>>,
        out: &mut Vec<Finding>,
    ) {
        const PROBE_COMMANDS: [&str; 4] = ["explain ", "report ", "trace ", "diff "];
        let Some(ids) = probe_ids else { return };
        for doc in DOC_FILES {
            let Ok(text) = std::fs::read_to_string(ws.root.join(doc)) else {
                continue;
            };
            for (line_no, line) in text.lines().enumerate() {
                for command in PROBE_COMMANDS {
                    let mut search_from = 0usize;
                    while let Some(pos) = line[search_from..].find(command) {
                        let mut word_start = search_from + pos + command.len();
                        // `diff <a> <b>`: keep consuming words while they
                        // look like probe ids, flagging each unknown one.
                        loop {
                            let word: String = line[word_start..]
                                .chars()
                                .take_while(|c| c.is_ascii_alphanumeric())
                                .collect();
                            if !looks_like_probe_id(&word) {
                                break;
                            }
                            if !ids.iter().any(|i| *i == word) {
                                out.push(Finding {
                                    rule: self.id(),
                                    file: doc.to_string(),
                                    line: (line_no + 1) as u32,
                                    col: (word_start + 1) as u32,
                                    message: format!(
                                        "doc references probe id `{word}` which is not in \
                                         PROBE_IDS ({EVENTS_FILE})"
                                    ),
                                    rationale: "a quoted `repro <subcommand> <id>` command must \
                                                keep working; update the doc or add the probe",
                                });
                            }
                            let after = word_start + word.len();
                            if command == "diff " && line[after..].starts_with(' ') {
                                word_start = after + 1;
                            } else {
                                break;
                            }
                        }
                        search_from = word_start;
                    }
                }
            }
        }
    }

    /// Any `manytest_*` metric name the docs quote must be declared in
    /// `METRIC_KEYS` — a scrape config copied from the README must keep
    /// matching what `metrics.prom` actually emits.
    fn check_doc_metric_keys(
        &self,
        ws: &Workspace,
        metric_keys: &Option<Vec<String>>,
        out: &mut Vec<Finding>,
    ) {
        let Some(keys) = metric_keys else { return };
        for doc in DOC_FILES {
            let Ok(text) = std::fs::read_to_string(ws.root.join(doc)) else {
                continue;
            };
            for (line_no, line) in text.lines().enumerate() {
                let mut search_from = 0usize;
                while let Some(pos) = line[search_from..].find("manytest_") {
                    let start = search_from + pos;
                    let token: String = line[start..]
                        .chars()
                        .take_while(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_')
                        .collect();
                    search_from = start + token.len();
                    // Rust paths (`manytest_sim::obs`) and bare crate
                    // names are not metric references.
                    if line[search_from..].starts_with("::")
                        || CRATE_NAMES.iter().any(|c| *c == token)
                    {
                        continue;
                    }
                    if !keys.iter().any(|k| *k == token) {
                        out.push(Finding {
                            rule: self.id(),
                            file: doc.to_string(),
                            line: (line_no + 1) as u32,
                            col: (start + 1) as u32,
                            message: format!(
                                "doc references metric `{token}` which is not in METRIC_KEYS \
                                 ({REPORT_FILE})"
                            ),
                            rationale: "a documented Prometheus metric must exist in \
                                        metrics.prom; update the doc or add the metric",
                        });
                    }
                }
            }
        }
    }
}

const GOLDEN_RATIONALE: &str =
    "the golden count gate only bites when its files parse and use real SimEvent kind \
     names; regenerate with MANYTEST_UPDATE_GOLDEN=1 rather than editing by hand";

const TRACE_RATIONALE: &str =
    "Perfetto silently drops malformed trace entries, so a schema slip hides telemetry \
     instead of failing; regenerate with `repro trace <id>` rather than editing by hand";

const MANIFEST_RATIONALE: &str =
    "runs list/show and the regress watch's ledger history skip manifests they cannot \
     parse or trust, so a schema slip silently erases run provenance; regenerate with \
     `repro --ledger` rather than editing by hand";

/// Minimal Chrome trace-event schema validation, exploiting the
/// writer's line-oriented layout (one entry per line inside `[` … `]`).
/// Returns `(line, message)` pairs.
fn validate_perfetto(text: &str) -> Vec<(u32, String)> {
    let mut errors = Vec::new();
    let mut flow_starts: Vec<String> = Vec::new();
    let mut flow_ends: Vec<String> = Vec::new();
    let trimmed = text.trim();
    if !trimmed.starts_with('[') || !trimmed.ends_with(']') {
        return vec![(1, "trace is not a JSON array".into())];
    }
    for (idx, raw) in text.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let entry = raw.trim().trim_end_matches(',');
        if entry.is_empty() || entry == "[" || entry == "]" {
            continue;
        }
        if !entry.starts_with('{') || !entry.ends_with('}') {
            errors.push((line_no, "trace entry is not one object per line".into()));
            continue;
        }
        let field = |name: &str| -> Option<String> {
            let pat = format!("\"{name}\":");
            let start = entry.find(&pat)? + pat.len();
            let rest = &entry[start..];
            Some(if let Some(quoted) = rest.strip_prefix('"') {
                quoted.chars().take_while(|&c| c != '"').collect()
            } else {
                rest.chars()
                    .take_while(|&c| c != ',' && c != '}')
                    .collect()
            })
        };
        for required in ["name", "ph", "pid", "tid"] {
            if field(required).is_none() {
                errors.push((line_no, format!("trace entry is missing `{required}`")));
            }
        }
        let Some(ph) = field("ph") else { continue };
        match ph.as_str() {
            "M" => {}
            "X" => {
                if field("dur").is_none() {
                    errors.push((line_no, "duration slice (`ph`:`X`) is missing `dur`".into()));
                }
            }
            "i" => {} // instants only need the shared `ts` check below
            "s" | "f" => match field("id") {
                Some(id) => {
                    if ph == "s" {
                        flow_starts.push(id);
                    } else {
                        if field("bp") != Some("e".into()) {
                            errors.push((
                                line_no,
                                "flow finish (`ph`:`f`) is missing `\"bp\":\"e\"`".into(),
                            ));
                        }
                        flow_ends.push(id);
                    }
                }
                None => errors.push((line_no, format!("flow event (`ph`:`{ph}`) is missing `id`"))),
            },
            other => errors.push((line_no, format!("unknown trace phase letter `{other}`"))),
        }
        if ph != "M" && field("ts").is_none() {
            errors.push((line_no, format!("`ph`:`{ph}` entry is missing `ts`")));
        }
    }
    flow_starts.sort();
    flow_ends.sort();
    if flow_starts != flow_ends {
        errors.push((
            1,
            format!(
                "flow starts and finishes do not pair up ({} starts, {} finishes)",
                flow_starts.len(),
                flow_ends.len()
            ),
        ));
    }
    errors
}

/// A kernels-baseline key is `g<edge>.<counter>` with a numeric edge and
/// a counter that is a real `PhaseProfile` field.
fn is_kernels_key(key: &str, counters: &[String]) -> bool {
    let Some((grid, counter)) = key.split_once('.') else {
        return false;
    };
    let Some(edge) = grid.strip_prefix('g') else {
        return false;
    };
    !edge.is_empty()
        && edge.chars().all(|c| c.is_ascii_digit())
        && counters.iter().any(|c| c == counter)
}

/// Extracts the field names of `struct <name> { … }` from `file`: every
/// identifier directly followed by `:` inside the braces. Good enough
/// for flat counter structs (no nested braced types). Empty when the
/// struct is absent.
fn struct_fields(file: &crate::source::SourceFile, name: &str) -> Vec<String> {
    let code: Vec<_> = file.code_tokens().collect();
    let mut i = 0;
    while i + 1 < code.len() {
        if code[i].is_ident("struct") && code[i + 1].is_ident(name) {
            break;
        }
        i += 1;
    }
    if i + 1 >= code.len() {
        return Vec::new();
    }
    while i < code.len() && !code[i].is_punct('{') {
        i += 1;
    }
    let mut fields = Vec::new();
    while i + 1 < code.len() && !code[i + 1].is_punct('}') {
        i += 1;
        if code[i].kind == TokenKind::Ident
            && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
        {
            fields.push(code[i].text.clone());
        }
    }
    fields
}

/// A probe id is a short letter+digits token (`e3`, `a6`, `e11`).
fn looks_like_probe_id(word: &str) -> bool {
    let mut chars = word.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_lowercase())
        && chars.clone().next().is_some()
        && chars.all(|c| c.is_ascii_digit())
}

/// Extracts a `const NAME: [&str; N] = ["…", …]` string-array literal
/// from `path`. `None` when the file or array is absent (synthetic
/// workspaces without that crate).
fn string_array(ws: &Workspace, path: &str, name: &str) -> Option<Vec<String>> {
    let file = ws.file(path)?;
    let code: Vec<_> = file.code_tokens().collect();
    let start = code.iter().position(|t| t.is_ident(name))?;
    // Skip the type annotation (`: [&str; 17]`): the literal starts at
    // the first `[` after the `=`.
    let eq = code[start..].iter().position(|t| t.is_punct('='))? + start;
    let open = code[eq..].iter().position(|t| t.is_punct('['))? + eq;
    let mut items = Vec::new();
    for tok in &code[open + 1..] {
        if tok.is_punct(']') {
            return Some(items);
        }
        if tok.kind == TokenKind::Str {
            items.push(tok.text.clone());
        }
    }
    None
}

/// Extracts a `const NAME: &str = "…"` string-literal constant from
/// `path`. `None` when the file or constant is absent.
fn string_const(ws: &Workspace, path: &str, name: &str) -> Option<String> {
    let file = ws.file(path)?;
    let code: Vec<_> = file.code_tokens().collect();
    let start = code.iter().position(|t| t.is_ident(name))?;
    let eq = code[start..].iter().position(|t| t.is_punct('='))? + start;
    code[eq..]
        .iter()
        .find(|t| t.kind == TokenKind::Str)
        .map(|t| t.text.clone())
}

/// Parses a flat JSON object whose values are strings or numbers — the
/// run-manifest shape. Returns `(key, string value if quoted, line,
/// col)` per entry, positioned at the *value*.
#[allow(clippy::type_complexity)]
fn parse_manifest_object(
    text: &str,
) -> Result<Vec<(String, Option<String>, u32, u32)>, (u32, u32, String)> {
    let mut p = JsonScanner::new(text);
    p.skip_ws();
    p.expect('{')?;
    let mut entries = Vec::new();
    p.skip_ws();
    if p.peek() == Some('}') {
        p.next();
        return Ok(entries);
    }
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(':')?;
        p.skip_ws();
        let (line, col) = (p.line, p.col);
        let value = if p.peek() == Some('"') {
            Some(p.string()?)
        } else {
            p.number()?;
            None
        };
        entries.push((key, value, line, col));
        p.skip_ws();
        match p.next() {
            Some(',') => continue,
            Some('}') => break,
            other => {
                return Err((
                    p.line,
                    p.col,
                    format!("expected `,` or `}}`, found {other:?}"),
                ))
            }
        }
    }
    Ok(entries)
}

/// Parses a flat JSON object `{ "key": <unsigned int>, … }`, returning
/// each key with its 1-based position. Errors carry a position too.
#[allow(clippy::type_complexity)]
fn parse_flat_object(text: &str) -> Result<Vec<(String, u32, u32)>, (u32, u32, String)> {
    let mut p = JsonScanner::new(text);
    p.skip_ws();
    p.expect('{')?;
    let mut entries = Vec::new();
    p.skip_ws();
    if p.peek() == Some('}') {
        p.next();
        return Ok(entries);
    }
    loop {
        p.skip_ws();
        let (line, col) = (p.line, p.col);
        let key = p.string()?;
        p.skip_ws();
        p.expect(':')?;
        p.skip_ws();
        p.unsigned()?;
        entries.push((key, line, col));
        p.skip_ws();
        match p.next() {
            Some(',') => continue,
            Some('}') => break,
            other => {
                return Err((
                    p.line,
                    p.col,
                    format!("expected `,` or `}}`, found {other:?}"),
                ))
            }
        }
    }
    Ok(entries)
}

struct JsonScanner<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> JsonScanner<'a> {
    fn new(text: &'a str) -> Self {
        JsonScanner {
            chars: text.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn next(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_whitespace()) {
            self.next();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), (u32, u32, String)> {
        let (line, col) = (self.line, self.col);
        match self.next() {
            Some(c) if c == want => Ok(()),
            other => Err((line, col, format!("expected `{want}`, found {other:?}"))),
        }
    }

    fn string(&mut self) -> Result<String, (u32, u32, String)> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            let (line, col) = (self.line, self.col);
            match self.next() {
                Some('"') => return Ok(s),
                Some('\\') => {
                    s.push(self.next().ok_or((line, col, "unterminated escape".to_string()))?);
                }
                Some(c) => s.push(c),
                None => return Err((line, col, "unterminated string".into())),
            }
        }
    }

    /// Accepts any JSON number (sign, decimals, exponent).
    fn number(&mut self) -> Result<(), (u32, u32, String)> {
        let (line, col) = (self.line, self.col);
        let mut digits = String::new();
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || "+-.eE".contains(c))
        {
            digits.push(self.next().unwrap_or('0'));
        }
        if digits.parse::<f64>().is_ok() {
            Ok(())
        } else {
            Err((line, col, "expected a JSON number".into()))
        }
    }

    fn unsigned(&mut self) -> Result<u64, (u32, u32, String)> {
        let (line, col) = (self.line, self.col);
        let mut digits = String::new();
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            digits.push(self.next().unwrap_or('0'));
        }
        digits
            .parse()
            .map_err(|_| (line, col, "expected an unsigned integer count".into()))
    }
}
