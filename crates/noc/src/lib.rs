//! 2-D mesh network-on-chip model for the `manytest` manycore simulator.
//!
//! The paper's platform is a NoC-based manycore with a 2-D mesh and
//! dimension-ordered (XY) wormhole routing. The original evaluation used an
//! RTL-level NoC; this crate substitutes an **analytical** model that
//! preserves everything the scheduling and mapping policies observe:
//!
//! * hop counts and Manhattan distances ([`routing`]) drive mapping cost and
//!   communication latency,
//! * per-hop router/link energy ([`energy`]) drives the NoC share of chip
//!   power,
//! * square-region availability search ([`region`]) is the first-node
//!   primitive of the runtime mapper (MapPro/CoNA style),
//! * link-utilisation accounting ([`traffic`]) exposes congestion trends,
//! * a queueing-delay contention model ([`contention`]) optionally turns
//!   link loads into latency multipliers.
//!
//! # Examples
//!
//! ```
//! use manytest_noc::prelude::*;
//!
//! let mesh = Mesh2D::new(4, 4);
//! let a = Coord::new(0, 0);
//! let b = Coord::new(3, 2);
//! assert_eq!(a.manhattan(b), 5);
//! assert_eq!(xy_route(a, b).count(), 5);
//! assert_eq!(mesh.node_count(), 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contention;
pub mod coord;
pub mod energy;
pub mod region;
pub mod routing;
pub mod topology;
pub mod traffic;

pub use contention::{ContentionModel, LinkLoads};
pub use coord::{Coord, NodeId};
pub use energy::{LinkEnergyModel, NocEnergy};
pub use region::{Region, RegionSearch};
pub use routing::{xy_route, Direction, Hop};
pub use topology::Mesh2D;
pub use traffic::TrafficMatrix;

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::contention::{ContentionModel, LinkLoads};
    pub use crate::coord::{Coord, NodeId};
    pub use crate::energy::{LinkEnergyModel, NocEnergy};
    pub use crate::region::{Region, RegionSearch};
    pub use crate::routing::{xy_route, Direction, Hop};
    pub use crate::topology::Mesh2D;
    pub use crate::traffic::TrafficMatrix;
}
