//! First-divergence run diffing.
//!
//! `repro diff <a> <b>` (or `repro diff <id> --seed2 S`) runs two probes,
//! aligns their event streams in lockstep, and reports the *first*
//! diverging event — the moment the two histories split — with both
//! records' causal chains side by side, followed by the downstream
//! per-kind count deltas and report-aggregate drift that flowed from that
//! split.
//!
//! The alignment key is the full rendered [`EventRecord`] JSON (id,
//! timestamp, cause link and payload), so any difference — a shifted
//! nanosecond, a different cause, a reordered emission — registers, and
//! two byte-identical logs diff to an explicit zero-divergence verdict
//! (which CI uses as a self-diff determinism gate).

use crate::events::{describe_event, probe_builder};
use crate::Scale;
use manytest_core::prelude::*;
use std::fmt::Write as _;

/// Aggregates worth surfacing as downstream drift, in render order.
/// Each entry is `(metric name, accessor)`.
const DRIFT_METRICS: &[(&str, fn(&Report) -> f64)] = &[
    ("apps_arrived", |r| r.apps_arrived as f64),
    ("apps_completed", |r| r.apps_completed as f64),
    ("apps_rejected", |r| r.apps_rejected as f64),
    ("tests_completed", |r| r.tests_completed as f64),
    ("tests_aborted", |r| r.tests_aborted as f64),
    ("tests_denied_power", |r| r.tests_denied_power as f64),
    ("fault_activations", |r| r.fault_activations as f64),
    ("fault_detections", |r| r.fault_detections as f64),
    ("cores_suspected", |r| r.cores_suspected as f64),
    ("cores_quarantined", |r| r.cores_quarantined as f64),
    ("cores_cleared", |r| r.cores_cleared as f64),
    ("apps_aborted", |r| r.apps_aborted as f64),
    ("apps_restarted", |r| r.apps_restarted as f64),
    ("apps_migrated", |r| r.apps_migrated as f64),
    ("corruption_exposure", |r| r.corruption_exposure),
    ("mean_power", |r| r.mean_power),
];

/// The second run of a diff: another probe id, or the same probe with
/// its seed overridden.
pub enum DiffTarget<'a> {
    /// Diff against a different probe id.
    Probe(&'a str),
    /// Diff against the same probe re-run under another seed.
    Seed(u64),
}

/// Runs both sides and renders the diff. `None` when either probe id is
/// unknown.
pub fn run_diff(id: &str, target: DiffTarget<'_>, scale: Scale) -> Option<String> {
    let report_a = crate::ledger::run_system(&format!("diff/{id}"), probe_builder(id, scale)?);
    let (label_b, report_b) = match target {
        DiffTarget::Probe(other) => (
            other.to_owned(),
            crate::ledger::run_system(&format!("diff/{other}"), probe_builder(other, scale)?),
        ),
        DiffTarget::Seed(seed2) => (
            format!("{id} --seed2 {seed2}"),
            crate::ledger::run_system(
                &format!("diff/{id}/seed{seed2}"),
                probe_builder(id, scale)?.seed(seed2),
            ),
        ),
    };
    Some(diff_reports(id, &report_a, &label_b, &report_b))
}

/// Renders one record's full causal chain as indented `caused-by` lines
/// (unconditionally — the diff wants provenance for *any* event kind).
fn render_chain(out: &mut String, graph: &ProvenanceGraph<'_>, rec: &EventRecord) {
    let chain = graph.chain_to_root(rec.id);
    for i in 1..chain.len() {
        let Some(link) = chain[i - 1].cause else { break };
        let anc = chain[i];
        let _ = write!(
            out,
            "              caused-by [{}] {:>8.3} ms: ",
            link.kind.as_str(),
            anc.t * 1e3
        );
        describe_event(out, &anc.ev);
        out.push('\n');
    }
    if chain.len() == 1 && rec.cause.is_none() {
        out.push_str("              (root event — no cause)\n");
    }
}

/// One side of the first-divergence panel.
fn render_side(out: &mut String, label: &str, graph: &ProvenanceGraph<'_>, rec: Option<&EventRecord>) {
    match rec {
        Some(rec) => {
            let _ = write!(out, "  {label}: event #{}  ", rec.id.0);
            describe(out, rec);
            render_chain(out, graph, rec);
        }
        None => {
            let _ = writeln!(out, "  {label}: (stream ended — no further events)");
        }
    }
}

/// Timeline line without reusing the private events.rs formatting quirks.
fn describe(out: &mut String, rec: &EventRecord) {
    let _ = write!(out, "{:>10.3} ms  ", rec.t * 1e3);
    describe_event(out, &rec.ev);
    out.push('\n');
}

/// Diffs two captured runs: first diverging event with both causal
/// chains, then downstream per-kind and aggregate drift.
pub fn diff_reports(label_a: &str, a: &Report, label_b: &str, b: &Report) -> String {
    let ev_a = a.events.events();
    let ev_b = b.events.events();
    let graph_a = ProvenanceGraph::build(ev_a);
    let graph_b = ProvenanceGraph::build(ev_b);
    let mut out = String::new();
    let _ = writeln!(out, "## run diff — {label_a} vs {label_b}");
    let _ = writeln!(
        out,
        "A: {} events ({} dropped)   B: {} events ({} dropped)",
        ev_a.len(),
        a.events.dropped(),
        ev_b.len(),
        b.events.dropped()
    );
    out.push('\n');

    // Lockstep scan on the rendered record JSON: ids, times, cause links
    // and payloads all participate in the comparison.
    let render = |rec: &EventRecord| {
        let mut s = String::new();
        rec.write_json(&mut s);
        s
    };
    let common = ev_a.len().min(ev_b.len());
    let mut divergence: Option<usize> = None;
    for i in 0..common {
        if render(&ev_a[i]) != render(&ev_b[i]) {
            divergence = Some(i);
            break;
        }
    }
    if divergence.is_none() && ev_a.len() != ev_b.len() {
        divergence = Some(common);
    }

    let Some(at) = divergence else {
        let _ = writeln!(
            out,
            "no divergence: all {} events are byte-identical across both runs",
            ev_a.len()
        );
        return out;
    };

    let _ = writeln!(
        out,
        "first divergence at event index {at} ({} identical events before it):",
        at
    );
    render_side(&mut out, "A", &graph_a, ev_a.get(at));
    render_side(&mut out, "B", &graph_b, ev_b.get(at));
    out.push('\n');

    // Downstream drift: per-kind count deltas…
    let _ = writeln!(out, "per-kind event count drift (A -> B):");
    let mut any = false;
    for kind in SimEvent::KINDS {
        let ca = a.events.count(kind);
        let cb = b.events.count(kind);
        if ca != cb {
            any = true;
            let _ = writeln!(
                out,
                "  {kind:<18} {ca:>8} -> {cb:<8} ({:+})",
                cb as i64 - ca as i64
            );
        }
    }
    if !any {
        out.push_str("  (none — the runs diverge in timing/payload only)\n");
    }
    out.push('\n');

    // …and report-aggregate drift.
    let _ = writeln!(out, "report aggregate drift (A -> B):");
    any = false;
    for &(name, get) in DRIFT_METRICS {
        let va = get(a);
        let vb = get(b);
        if va != vb {
            any = true;
            let _ = writeln!(out, "  {name:<20} {va} -> {vb} ({:+})", vb - va);
        }
    }
    if !any {
        out.push_str("  (none)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::run_probe;

    fn tiny(seed: u64) -> Report {
        SystemBuilder::new(TechNode::N16)
            .seed(seed)
            .sim_time_ms(50)
            .arrival_rate(2_000.0)
            .capture_events(1 << 14)
            .injected_faults(4)
            .build()
            .expect("valid config")
            .run()
    }

    #[test]
    fn identical_runs_report_zero_divergence() {
        let a = tiny(7);
        let b = tiny(7);
        let text = diff_reports("x", &a, "x", &b);
        assert!(text.contains("no divergence"), "{text}");
    }

    #[test]
    fn reseeded_runs_name_a_first_divergence_with_chains() {
        let a = tiny(7);
        let b = tiny(8);
        let text = diff_reports("x", &a, "x --seed2 8", &b);
        assert!(text.contains("first divergence at event index"), "{text}");
        assert!(text.contains("A: event #"), "{text}");
        assert!(text.contains("B: "), "{text}");
    }

    #[test]
    fn self_diff_of_a_probe_is_clean() {
        let a = run_probe("e3", Scale::Quick).expect("known probe");
        let b = run_probe("e3", Scale::Quick).expect("known probe");
        let text = diff_reports("e3", &a, "e3", &b);
        assert!(text.contains("no divergence"), "{text}");
    }
}
