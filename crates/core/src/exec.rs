//! Execution-plane state: core modes and in-flight applications.
//!
//! Per-core runtime state (owner, session, mode, accounting watermark)
//! lives in the struct-of-arrays [`crate::store::CoreStore`]; this
//! module keeps the mode enum it stores plus the per-application state.

use manytest_power::{OperatingPoint, Reservation};
use manytest_workload::{AppId, Application, TaskGraph, TaskId};
use manytest_map::Mapping;

/// What a core is doing right now (drives its power draw).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoreMode {
    /// Power-gated: unallocated and not testing. Draws nothing.
    Off,
    /// Allocated to an application but its task is not running yet;
    /// clocked at the application's operating point.
    Idle(OperatingPoint),
    /// Executing a task at the application's operating point.
    Busy(OperatingPoint),
    /// Running an SBST routine at the session's operating point with the
    /// routine's activity factor.
    Testing(OperatingPoint, f64),
}

/// Lifecycle of one task inside a running application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskState {
    /// Waiting for predecessors (and their messages).
    Waiting,
    /// All inputs have arrived; waiting for its core (e.g. test abort) or
    /// already executing until the recorded finish time.
    Running {
        /// Exact completion time, seconds.
        finish: f64,
    },
    /// Completed at the recorded time.
    Done {
        /// Exact completion time, seconds.
        at: f64,
    },
}

/// An admitted application executing on the mesh.
#[derive(Debug)]
pub struct RunningApp {
    /// Identity of this instance.
    pub id: AppId,
    /// The task graph being executed.
    pub graph: TaskGraph,
    /// Task → core assignment.
    pub mapping: Mapping,
    /// Operating point all of the app's cores run at.
    pub op: OperatingPoint,
    /// Power reserved for the application's still-incomplete tasks.
    pub reservation: Reservation,
    /// Watts reserved per task; returned to the budget as tasks finish.
    pub per_task_watts: f64,
    /// Per-task lifecycle.
    pub tasks: Vec<TaskState>,
    /// Number of tasks in `Done`.
    pub done_count: usize,
    /// Arrival time, seconds (for latency statistics).
    pub arrived_at: f64,
    /// Admission time, seconds.
    pub started_at: f64,
    /// Time of the last checkpoint image (admission counts as one: the
    /// mapped state is clean). A later migration transfers only the
    /// state dirtied since this stamp.
    pub last_checkpoint: f64,
    /// Admission-instance counter: task events carry the value current at
    /// scheduling time, so events from before a restart or migration of
    /// the same application id are recognised as stale and dropped.
    pub inc: u64,
    /// Id of the `AppMapped` event that admitted this instance; the
    /// eventual `AppCompleted` links back to it (provenance).
    pub mapped_event: manytest_sim::EventId,
}

impl RunningApp {
    /// True once every task completed.
    pub fn is_complete(&self) -> bool {
        self.done_count == self.tasks.len()
    }

    /// True if every predecessor of `task` is done.
    pub fn predecessors_done(&self, task: TaskId) -> bool {
        self.graph
            .predecessors(task)
            .all(|p| matches!(self.tasks[p.index()], TaskState::Done { .. }))
    }

    /// The time the last input message for `task` arrives, given each
    /// predecessor's completion time plus its edge latency. Only valid
    /// once [`Self::predecessors_done`] holds.
    ///
    /// # Panics
    ///
    /// Panics if a predecessor is not done.
    // lint:effect(panic, reason = "documented # Panics contract: callers gate on predecessors_done, so a not-done predecessor is a scheduler bug")
    pub fn input_ready_time(&self, task: TaskId, edge_latency: impl Fn(TaskId, TaskId) -> f64) -> f64 {
        self.graph
            .predecessors(task)
            .map(|p| {
                let done_at = match self.tasks[p.index()] {
                    TaskState::Done { at } => at,
                    other => panic!("predecessor {p} not done: {other:?}"),
                };
                done_at + edge_latency(p, task)
            })
            .fold(self.started_at, f64::max)
    }
}

/// A queued application waiting for admission.
#[derive(Debug, Clone)]
pub struct PendingApp {
    /// The application (graph + identity + arrival stamp).
    pub app: Application,
}

#[cfg(test)]
mod tests {
    use super::*;
    use manytest_noc::Coord;
    use manytest_power::{TechNode, VfLadder};
    use manytest_workload::Task;

    fn ladder_op() -> OperatingPoint {
        VfLadder::for_node(TechNode::N16, 5).max()
    }

    fn two_task_app() -> (TaskGraph, Mapping) {
        let mut g = TaskGraph::new("pair");
        let a = g.add_task(Task { instructions: 100 });
        let b = g.add_task(Task { instructions: 100 });
        g.add_edge(a, b, 1000.0);
        let m = Mapping::new(vec![Coord::new(0, 0), Coord::new(1, 0)]);
        (g, m)
    }

    fn running(reservation: Reservation) -> RunningApp {
        let (graph, mapping) = two_task_app();
        RunningApp {
            id: AppId(1),
            tasks: vec![TaskState::Waiting; graph.task_count()],
            graph,
            mapping,
            op: ladder_op(),
            reservation,
            per_task_watts: 0.5,
            done_count: 0,
            arrived_at: 0.0,
            started_at: 0.001,
            last_checkpoint: 0.001,
            inc: 0,
            mapped_event: manytest_sim::EventId(0),
        }
    }

    fn some_reservation() -> Reservation {
        manytest_power::PowerBudget::new(10.0).reserve(1.0).unwrap()
    }

    #[test]
    fn app_completion_tracking() {
        let mut app = running(some_reservation());
        assert!(!app.is_complete());
        app.tasks[0] = TaskState::Done { at: 0.002 };
        app.done_count = 1;
        assert!(app.predecessors_done(TaskId(1)));
        app.tasks[1] = TaskState::Done { at: 0.003 };
        app.done_count = 2;
        assert!(app.is_complete());
    }

    #[test]
    fn input_ready_time_adds_edge_latency() {
        let mut app = running(some_reservation());
        app.tasks[0] = TaskState::Done { at: 0.002 };
        app.done_count = 1;
        let ready = app.input_ready_time(TaskId(1), |_, _| 0.0005);
        assert!((ready - 0.0025).abs() < 1e-12);
    }

    #[test]
    fn roots_are_ready_at_start_time() {
        let app = running(some_reservation());
        // Task 0 has no predecessors: ready at started_at.
        assert!(app.predecessors_done(TaskId(0)));
        let ready = app.input_ready_time(TaskId(0), |_, _| 1.0);
        assert_eq!(ready, app.started_at);
    }

    #[test]
    #[should_panic(expected = "not done")]
    fn input_ready_time_requires_done_predecessors() {
        let app = running(some_reservation());
        app.input_ready_time(TaskId(1), |_, _| 0.0);
    }
}
