//! Deterministic, splittable random number generation.
//!
//! Every stochastic subsystem (workload generator, arrival process, fault
//! injector, tie-breaking in the mapper) must draw from its own stream so
//! that changing how many numbers one subsystem consumes does not perturb the
//! others. [`SimRng`] wraps a small, fast `SplitMix64`/`xoshiro256**`-style
//! generator implemented locally so the stream is stable across `rand`
//! versions, plus labelled child-stream derivation.

use serde::{Deserialize, Serialize};

#[cfg(debug_assertions)]
thread_local! {
    /// The batch-job id the current thread is executing, if any.
    static JOB_SCOPE: std::cell::Cell<Option<u64>> =
        const { std::cell::Cell::new(None) };
}

/// Marks the current thread as executing batch job `id` until the guard
/// drops. While a scope is active, every [`SimRng`] binds itself to the
/// job on first draw; a handle that later draws inside a *different* job
/// panics (debug builds only). This is the per-batch RNG audit: a shared
/// RNG handle crossing a job boundary would make results depend on job
/// execution order and silently break the batch runner's determinism
/// guarantee.
///
/// Release builds compile both the guard and the per-draw check to
/// nothing. Scopes nest; the guard restores the previous scope on drop.
pub fn enter_job_scope(id: u64) -> JobScopeGuard {
    #[cfg(debug_assertions)]
    {
        JobScopeGuard {
            prev: JOB_SCOPE.with(|s| s.replace(Some(id))),
        }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = id;
        JobScopeGuard {}
    }
}

/// RAII guard returned by [`enter_job_scope`]; restores the previous
/// scope (usually "none") when dropped.
#[derive(Debug)]
pub struct JobScopeGuard {
    #[cfg(debug_assertions)]
    prev: Option<u64>,
}

#[cfg(debug_assertions)]
impl Drop for JobScopeGuard {
    fn drop(&mut self) {
        JOB_SCOPE.with(|s| s.set(self.prev));
    }
}

/// A deterministic random number generator with labelled sub-streams.
///
/// # Examples
///
/// ```
/// use manytest_sim::rng::SimRng;
///
/// let mut root = SimRng::seed_from(42);
/// let mut workload = root.derive("workload");
/// let mut faults = root.derive("faults");
/// // Streams are independent: consuming one does not affect the other.
/// let w1 = workload.next_u64();
/// let f1 = faults.next_u64();
/// let mut faults2 = SimRng::seed_from(42).derive("faults");
/// // `derive` only hashes the label and the root seed, so the fault stream
/// // is reproducible even though the workload stream was consumed first.
/// assert_eq!(faults2.next_u64(), f1);
/// assert_ne!(w1, f1);
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct SimRng {
    seed: u64,
    state: [u64; 4],
    /// Batch job this handle first drew inside, for the job-boundary
    /// audit. Not part of the generator's value: cloning resets it and
    /// equality ignores it.
    #[cfg(debug_assertions)]
    job_tag: Option<u64>,
}

impl Clone for SimRng {
    fn clone(&self) -> Self {
        // A clone is an independent handle: it may legitimately be used
        // by a different job, so it starts unbound.
        SimRng::from_parts(self.seed, self.state)
    }
}

impl PartialEq for SimRng {
    fn eq(&self, other: &Self) -> bool {
        self.seed == other.seed && self.state == other.state
    }
}

impl Eq for SimRng {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    fn from_parts(seed: u64, state: [u64; 4]) -> Self {
        SimRng {
            seed,
            state,
            #[cfg(debug_assertions)]
            job_tag: None,
        }
    }

    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng::from_parts(seed, state)
    }

    /// Debug-build check that this handle stays inside one batch job.
    #[cfg(debug_assertions)]
    fn audit_job_scope(&mut self) {
        let Some(scope) = JOB_SCOPE.with(std::cell::Cell::get) else {
            return; // not inside a batch job: nothing to audit
        };
        match self.job_tag {
            None => self.job_tag = Some(scope),
            Some(tag) => assert!(
                tag == scope,
                "SimRng handle crossed a batch job boundary (first drawn in job \
                 {tag}, now drawing in job {scope}); every batch job must \
                 construct its own seeded RNG to keep runs deterministic"
            ),
        }
    }

    /// Derives an independent child stream identified by `label`.
    ///
    /// Derivation depends only on the *original seed* of this generator and
    /// the label, never on how many numbers have been drawn, so subsystem
    /// streams stay stable when unrelated code changes.
    pub fn derive(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SimRng::seed_from(h)
    }

    /// The seed this generator (or stream) was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Next 64 uniformly distributed bits (xoshiro256** step).
    pub fn next_u64(&mut self) -> u64 {
        #[cfg(debug_assertions)]
        self.audit_job_scope();
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire-style rejection-free-enough reduction; bias is < 2^-64 * bound
        // which is irrelevant for simulation workloads, but we still reject
        // the biased zone to keep the distribution exact.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = u128::from(r) * u128::from(bound);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range: {lo}..={hi}");
        if lo == hi {
            return lo;
        }
        lo + self.gen_range(hi - lo + 1)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn gen_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "invalid range");
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed draw with the given `rate` (λ), used for
    /// Poisson inter-arrival times.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn gen_exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        // Inverse CDF; guard the log away from 0.
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / rate
    }

    /// Normally distributed draw (Box–Muller) with `mean` and `std_dev`.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or non-finite.
    pub fn gen_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0 && std_dev.is_finite(), "invalid std_dev");
        let u1 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.gen_range(items.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be essentially disjoint");
    }

    #[test]
    fn derive_is_stable_and_label_sensitive() {
        let root = SimRng::seed_from(99);
        let mut a1 = root.derive("alpha");
        let mut a2 = root.derive("alpha");
        let mut b = root.derive("beta");
        assert_eq!(a1.next_u64(), a2.next_u64());
        let mut a3 = root.derive("alpha");
        a3.next_u64();
        assert_ne!(a3.next_u64(), b.next_u64());
    }

    #[test]
    fn derive_independent_of_consumption() {
        let mut root = SimRng::seed_from(5);
        let before = root.derive("x").next_u64();
        root.next_u64();
        root.next_u64();
        let after = root.derive("x").next_u64();
        assert_eq!(before, after);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = SimRng::seed_from(11);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = rng.gen_range(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values should occur");
    }

    #[test]
    fn gen_range_inclusive_hits_both_ends() {
        let mut rng = SimRng::seed_from(13);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            match rng.gen_range_inclusive(2, 4) {
                2 => lo_seen = true,
                4 => hi_seen = true,
                3 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
        assert_eq!(rng.gen_range_inclusive(9, 9), 9);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_range_zero_panics() {
        SimRng::seed_from(0).gen_range(0);
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut rng = SimRng::seed_from(17);
        let rate = 4.0;
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.gen_exp(rate)).sum();
        let mean = sum / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SimRng::seed_from(23);
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.gen_normal(10.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.2, "variance was {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from(29);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty_and_nonempty() {
        let mut rng = SimRng::seed_from(31);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let items = [1, 2, 3];
        assert!(items.contains(rng.choose(&items).unwrap()));
    }

    #[test]
    fn gen_bool_probability_edges() {
        let mut rng = SimRng::seed_from(37);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn equality_ignores_job_tag_and_clone_resets_it() {
        let mut a = SimRng::seed_from(41);
        {
            let _scope = enter_job_scope(7);
            a.next_u64(); // binds `a` to job 7 in debug builds
        }
        let mut b = a.clone();
        assert_eq!(a, b, "clone equals original regardless of audit tag");
        let from_b = {
            // The clone is a fresh handle: a different job may use it.
            let _scope = enter_job_scope(8);
            b.next_u64()
        };
        assert_eq!(a.next_u64(), from_b, "streams stay in lockstep");
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "crossed a batch job boundary")]
    fn drawing_across_job_scopes_panics_in_debug() {
        let mut rng = SimRng::seed_from(43);
        {
            let _scope = enter_job_scope(1);
            rng.next_u64();
        }
        let _scope = enter_job_scope(2);
        rng.next_u64();
    }

    #[cfg(debug_assertions)]
    #[test]
    fn job_scopes_nest_and_restore() {
        let mut rng = SimRng::seed_from(47);
        let outer = enter_job_scope(1);
        rng.next_u64();
        {
            let mut inner_rng = SimRng::seed_from(48);
            let _inner = enter_job_scope(2);
            inner_rng.next_u64();
        }
        // Back in job 1: the original handle is still valid here.
        rng.next_u64();
        drop(outer);
        // Outside any scope the audit is inert.
        rng.next_u64();
    }
}
