//! Per-core health state machine: the bridge between fault *detection*
//! and fault *response*.
//!
//! Detection alone is telemetry; the paper's online testing only pays off
//! if a detected core is actually withdrawn before it corrupts more
//! application work. The [`HealthBoard`] tracks one [`CoreHealth`] per
//! core:
//!
//! ```text
//!            detection (or false positive)
//! Healthy ──────────────────────────────────▶ Suspect { level, remaining }
//!    ▲  ▲                                         │
//!    │  │  K retests, symptom never reproduced    │ any retest reproduces
//!    │  └─────────────────────────────────────────┤ the symptom
//!    │                                            ▼
//!    │       probe lane picks the core up    Quarantined { backoff }
//!    │      ┌─────────────────────────────────────┘    ▲
//!    │      ▼                                          │
//!    │  Probation { streak, backoff }                  │ a probe reproduces
//!    │      │                                          │ the symptom
//!    │      │ streak of clean probes reaches the       │ (backoff += 1)
//!    │      │ re-admission threshold                   │
//!    └──────┴──────────────────────────────────────────┘
//! ```
//!
//! A `Suspect` core stays schedulable for *tests* (the confirmation
//! retests run on it, pinned to the detecting V/f level) but takes no new
//! application work. `Quarantined` is no longer terminal: the core is
//! power-gated and removed from the mapper's free set, but a background
//! re-admission lane may move it to `Probation` and run cheap low-V/f
//! probe routines at a slow cadence. A streak of clean probes re-admits
//! the core to `Healthy`; a probe that reproduces the symptom sends it
//! back to `Quarantined` with an exponentially backed-off retry cadence.
//! Until the re-admission fires, a withdrawn core ([`CoreHealth::Quarantined`]
//! or [`CoreHealth::Probation`]) takes no application work and its share
//! of the power budget stays derated away.

use manytest_power::VfLevel;
use serde::{Deserialize, Serialize};

/// Health state of one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoreHealth {
    /// No open detection; full citizen of the mapper and scheduler.
    Healthy,
    /// A detection is awaiting confirmation.
    Suspect {
        /// DVFS level the detection happened at; retests are pinned here.
        level: VfLevel,
        /// Confirmation retests still to run before the core is cleared.
        remaining: u8,
        /// Confirmation retests completed so far in this suspicion.
        used: u8,
    },
    /// Confirmed faulty and withdrawn; eligible for probation once the
    /// re-admission lane's backed-off cadence comes due.
    Quarantined {
        /// Failed probation rounds so far (exponent of the retry
        /// cadence's backoff multiplier).
        backoff: u8,
    },
    /// Withdrawn from mapping but under active re-admission probing.
    Probation {
        /// Consecutive clean probes banked this probation round.
        streak: u8,
        /// Failed probation rounds before this one.
        backoff: u8,
    },
}

/// The per-core health table (see module docs).
///
/// # Examples
///
/// ```
/// use manytest_sbst::health::{CoreHealth, HealthBoard};
/// use manytest_power::VfLevel;
///
/// let mut board = HealthBoard::new(4);
/// board.mark_suspect(2, VfLevel(1), 3);
/// assert!(board.is_suspect(2));
/// assert!(!board.is_healthy(2));
/// let used = board.quarantine(2);
/// assert_eq!(used, 0);
/// assert_eq!(board.healthy_count(), 3);
/// // The re-admission lane can probe the core back to health.
/// board.begin_probation(2);
/// assert_eq!(board.note_probe_pass(2), 1);
/// assert_eq!(board.readmit(2), 1);
/// assert!(board.is_healthy(2));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthBoard {
    states: Vec<CoreHealth>,
}

impl HealthBoard {
    /// A board with every core healthy.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        HealthBoard {
            states: vec![CoreHealth::Healthy; cores],
        }
    }

    /// The health state of `core`.
    pub fn state(&self, core: usize) -> CoreHealth {
        self.states[core]
    }

    /// True if `core` is fully healthy.
    pub fn is_healthy(&self, core: usize) -> bool {
        matches!(self.states[core], CoreHealth::Healthy)
    }

    /// True if `core` awaits confirmation retests.
    pub fn is_suspect(&self, core: usize) -> bool {
        matches!(self.states[core], CoreHealth::Suspect { .. })
    }

    /// True if `core` is quarantined and awaiting its next probation
    /// round (does not include cores already under probation).
    pub fn is_quarantined(&self, core: usize) -> bool {
        matches!(self.states[core], CoreHealth::Quarantined { .. })
    }

    /// True if `core` is under active re-admission probing.
    pub fn is_probation(&self, core: usize) -> bool {
        matches!(self.states[core], CoreHealth::Probation { .. })
    }

    /// True if `core` is withdrawn from application mapping — either
    /// quarantined or on probation. Until `readmit` fires, the mapper
    /// must treat both the same.
    pub fn is_withdrawn(&self, core: usize) -> bool {
        matches!(
            self.states[core],
            CoreHealth::Quarantined { .. } | CoreHealth::Probation { .. }
        )
    }

    /// The pinned retest level of a suspect core.
    pub fn suspect_level(&self, core: usize) -> Option<VfLevel> {
        match self.states[core] {
            CoreHealth::Suspect { level, .. } => Some(level),
            _ => None,
        }
    }

    /// Opens a suspicion on `core`: `retests` confirmations pinned to
    /// `level`. No-op unless the core is currently healthy (an open
    /// suspicion keeps its original level and budget; a withdrawn core
    /// only comes back through probation).
    pub fn mark_suspect(&mut self, core: usize, level: VfLevel, retests: u8) {
        if matches!(self.states[core], CoreHealth::Healthy) {
            self.states[core] = CoreHealth::Suspect {
                level,
                remaining: retests,
                used: 0,
            };
        }
    }

    /// Records one completed confirmation retest on a suspect core.
    /// Returns `(used, remaining)` after the decrement; `(0, 0)` if the
    /// core was not suspect.
    pub fn note_retest_complete(&mut self, core: usize) -> (u8, u8) {
        match &mut self.states[core] {
            CoreHealth::Suspect { remaining, used, .. } => {
                *remaining = remaining.saturating_sub(1);
                *used = used.saturating_add(1);
                (*used, *remaining)
            }
            _ => (0, 0),
        }
    }

    /// Moves `core` to `Quarantined` with a fresh backoff ladder (a new
    /// confirmed detection restarts the retry cadence). Returns the
    /// number of confirmation retests that had completed in the
    /// suspicion.
    pub fn quarantine(&mut self, core: usize) -> u8 {
        let used = match self.states[core] {
            CoreHealth::Suspect { used, .. } => used,
            _ => 0,
        };
        self.states[core] = CoreHealth::Quarantined { backoff: 0 };
        used
    }

    /// Starts a probation round on a quarantined `core` (the backoff
    /// ladder carries over). Returns the carried backoff; no-op
    /// (returning 0) unless the core is quarantined.
    pub fn begin_probation(&mut self, core: usize) -> u8 {
        match self.states[core] {
            CoreHealth::Quarantined { backoff } => {
                self.states[core] = CoreHealth::Probation { streak: 0, backoff };
                backoff
            }
            _ => 0,
        }
    }

    /// Records one clean probe on a probation `core`. Returns the new
    /// streak length; 0 if the core was not on probation.
    pub fn note_probe_pass(&mut self, core: usize) -> u8 {
        match &mut self.states[core] {
            CoreHealth::Probation { streak, .. } => {
                *streak = streak.saturating_add(1);
                *streak
            }
            _ => 0,
        }
    }

    /// Re-admits a probation `core` to `Healthy`. Returns the clean-probe
    /// streak that earned the re-admission; no-op (returning 0) unless
    /// the core is on probation.
    pub fn readmit(&mut self, core: usize) -> u8 {
        match self.states[core] {
            CoreHealth::Probation { streak, .. } => {
                self.states[core] = CoreHealth::Healthy;
                streak
            }
            _ => 0,
        }
    }

    /// Fails a probation round: `core` returns to `Quarantined` with the
    /// backoff exponent bumped (saturating). Returns the new backoff;
    /// no-op (returning 0) unless the core is on probation.
    pub fn fail_probation(&mut self, core: usize) -> u8 {
        match self.states[core] {
            CoreHealth::Probation { backoff, .. } => {
                let bumped = backoff.saturating_add(1);
                self.states[core] = CoreHealth::Quarantined { backoff: bumped };
                bumped
            }
            _ => 0,
        }
    }

    /// The backoff exponent of a withdrawn core (0 for other states).
    pub fn backoff(&self, core: usize) -> u8 {
        match self.states[core] {
            CoreHealth::Quarantined { backoff } | CoreHealth::Probation { backoff, .. } => backoff,
            _ => 0,
        }
    }

    /// The clean-probe streak of a probation core (0 for other states).
    pub fn probe_streak(&self, core: usize) -> u8 {
        match self.states[core] {
            CoreHealth::Probation { streak, .. } => streak,
            _ => 0,
        }
    }

    /// Clears a suspect `core` back to `Healthy`. Returns the number of
    /// confirmation retests that had completed; no-op (returning 0) on a
    /// withdrawn core — the only way back from quarantine is a clean
    /// probation round.
    pub fn clear(&mut self, core: usize) -> u8 {
        match self.states[core] {
            CoreHealth::Suspect { used, .. } => {
                self.states[core] = CoreHealth::Healthy;
                used
            }
            _ => 0,
        }
    }

    /// Number of cores.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Never true; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Cores currently `Healthy`.
    pub fn healthy_count(&self) -> usize {
        self.states.iter().filter(|s| matches!(s, CoreHealth::Healthy)).count()
    }

    /// Cores currently `Suspect`.
    pub fn suspect_count(&self) -> usize {
        self.states
            .iter()
            .filter(|s| matches!(s, CoreHealth::Suspect { .. }))
            .count()
    }

    /// Cores currently `Quarantined` (excluding probation).
    pub fn quarantined_count(&self) -> usize {
        self.states
            .iter()
            .filter(|s| matches!(s, CoreHealth::Quarantined { .. }))
            .count()
    }

    /// Cores currently on `Probation`.
    pub fn probation_count(&self) -> usize {
        self.states
            .iter()
            .filter(|s| matches!(s, CoreHealth::Probation { .. }))
            .count()
    }

    /// Cores withdrawn from mapping (`Quarantined` + `Probation`).
    pub fn withdrawn_count(&self) -> usize {
        self.quarantined_count() + self.probation_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_board_is_all_healthy() {
        let board = HealthBoard::new(8);
        assert_eq!(board.len(), 8);
        assert_eq!(board.healthy_count(), 8);
        assert_eq!(board.suspect_count(), 0);
        assert_eq!(board.quarantined_count(), 0);
        assert_eq!(board.probation_count(), 0);
    }

    #[test]
    fn suspicion_tracks_level_and_retest_budget() {
        let mut board = HealthBoard::new(4);
        board.mark_suspect(1, VfLevel(2), 3);
        assert_eq!(board.suspect_level(1), Some(VfLevel(2)));
        assert_eq!(board.note_retest_complete(1), (1, 2));
        assert_eq!(board.note_retest_complete(1), (2, 1));
        assert_eq!(board.note_retest_complete(1), (3, 0));
        // Exhausting the budget does not auto-clear; the caller decides.
        assert!(board.is_suspect(1));
        assert_eq!(board.clear(1), 3);
        assert!(board.is_healthy(1));
    }

    #[test]
    fn re_marking_an_open_suspect_keeps_the_original_suspicion() {
        let mut board = HealthBoard::new(2);
        board.mark_suspect(0, VfLevel(1), 3);
        board.note_retest_complete(0);
        board.mark_suspect(0, VfLevel(4), 9);
        assert_eq!(board.suspect_level(0), Some(VfLevel(1)));
        assert_eq!(board.note_retest_complete(0), (2, 1));
    }

    #[test]
    fn quarantine_exits_only_through_probation() {
        let mut board = HealthBoard::new(3);
        board.mark_suspect(2, VfLevel(0), 2);
        board.note_retest_complete(2);
        assert_eq!(board.quarantine(2), 1);
        assert!(board.is_quarantined(2));
        assert!(board.is_withdrawn(2));
        // Neither clearing nor re-suspecting resurrects the core.
        assert_eq!(board.clear(2), 0);
        assert!(board.is_quarantined(2));
        board.mark_suspect(2, VfLevel(0), 2);
        assert!(board.is_quarantined(2));
        assert_eq!(board.healthy_count(), 2);
        // Probe passes and re-admission do.
        assert_eq!(board.begin_probation(2), 0);
        assert!(board.is_probation(2));
        assert!(board.is_withdrawn(2));
        assert!(!board.is_quarantined(2));
        assert_eq!(board.note_probe_pass(2), 1);
        assert_eq!(board.note_probe_pass(2), 2);
        assert_eq!(board.readmit(2), 2);
        assert!(board.is_healthy(2));
        assert_eq!(board.healthy_count(), 3);
    }

    #[test]
    fn failed_probation_backs_off_exponentially() {
        let mut board = HealthBoard::new(2);
        board.quarantine(1);
        assert_eq!(board.backoff(1), 0);
        board.begin_probation(1);
        board.note_probe_pass(1);
        // A probe reproducing the symptom wipes the streak and bumps
        // the backoff exponent.
        assert_eq!(board.fail_probation(1), 1);
        assert!(board.is_quarantined(1));
        assert_eq!(board.backoff(1), 1);
        assert_eq!(board.begin_probation(1), 1);
        assert_eq!(board.probe_streak(1), 0);
        assert_eq!(board.fail_probation(1), 2);
        assert_eq!(board.backoff(1), 2);
        // A fresh confirmed quarantine restarts the ladder.
        board.begin_probation(1);
        board.readmit(1);
        board.quarantine(1);
        assert_eq!(board.backoff(1), 0);
    }

    #[test]
    fn probation_calls_on_wrong_states_are_noops() {
        let mut board = HealthBoard::new(2);
        assert_eq!(board.begin_probation(0), 0);
        assert!(board.is_healthy(0));
        assert_eq!(board.note_probe_pass(0), 0);
        assert_eq!(board.readmit(0), 0);
        assert_eq!(board.fail_probation(0), 0);
        assert!(board.is_healthy(0));
        board.mark_suspect(0, VfLevel(1), 2);
        assert_eq!(board.begin_probation(0), 0);
        assert!(board.is_suspect(0));
    }

    #[test]
    fn retest_noted_on_non_suspect_core_is_a_noop() {
        let mut board = HealthBoard::new(2);
        assert_eq!(board.note_retest_complete(0), (0, 0));
        assert!(board.is_healthy(0));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        HealthBoard::new(0);
    }
}
