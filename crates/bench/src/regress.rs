//! `repro regress` — the cross-run regression watch.
//!
//! Re-runs a small deterministic probe set (plus one kernels grid) at
//! quick scale and compares the resulting aggregates against the
//! committed baseline `tests/baselines/regress.quick.json`, emitting a
//! thresholded drift table. Counters must match exactly; float
//! aggregates get a tiny relative tolerance that only forgives decimal
//! round-trip noise, never behavioural drift. CI runs this as a gate
//! (nonzero exit on drift); `MANYTEST_UPDATE_GOLDEN=1` regenerates the
//! baseline after a reviewed behavioural change. When a run ledger is
//! active, the table also reports (informationally) how the current
//! values compare to the most recent ledger manifest per probe.

use crate::events::run_probe;
use crate::kernels::{kernels_builder, KERNELS_SEED};
use crate::ledger::{self, parse_flat_json, FlatValue};
use crate::runner::Batch;
use crate::Scale;
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// Probes the watch re-runs: a baseline-load run (e3), the
/// fault-response run (e11) and the core-lifecycle run (e12) — together
/// they exercise mapping, testing, quarantine and re-admission.
pub const REGRESS_PROBES: [&str; 3] = ["e3", "e11", "e12"];

/// Kernels grid edge the watch re-runs (8×8: quick, full coverage of
/// the scan counters).
pub const REGRESS_GRID: u16 = 8;

/// Relative tolerance for float aggregates: forgives only decimal
/// text round-trip noise (values are deterministic bit-for-bit).
pub const REL_TOL: f64 = 1e-9;

/// The committed baseline path.
pub fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/baselines/regress.quick.json")
}

/// Computes the watched aggregates at quick scale, in a fixed order.
/// Probe runs go through the batch runner (and therefore the ledger
/// funnel), so a warm ledger serves them from cache.
pub fn current_values(jobs: usize) -> Vec<(String, f64)> {
    let mut batch = Batch::new();
    for &id in &REGRESS_PROBES {
        batch.push(format!("probe/{id}"), move || {
            run_probe(id, Scale::Quick).expect("regress probes are known ids")
        });
    }
    batch.push(format!("kernels/g{REGRESS_GRID}"), || {
        ledger::run_system(
            &format!("kernels/g{REGRESS_GRID}"),
            kernels_builder(REGRESS_GRID, Scale::Quick),
        )
    });
    let mut reports = batch.run(jobs);
    let kernels = reports.pop().expect("kernels job present");
    let mut values = Vec::new();
    for (id, r) in REGRESS_PROBES.iter().zip(&reports) {
        values.push((format!("{id}.throughput_mips"), r.throughput_mips));
        values.push((format!("{id}.tests_completed"), r.tests_completed as f64));
        values.push((format!("{id}.faults_detected"), r.faults_detected as f64));
        values.push((format!("{id}.events_total"), r.events.total() as f64));
        values.push((format!("{id}.mean_power_watts"), r.mean_power));
    }
    let g = REGRESS_GRID;
    let p = &kernels.profile;
    values.push((format!("g{g}.epochs"), p.epochs as f64));
    values.push((format!("g{g}.candidates_scanned"), p.candidates_scanned as f64));
    values.push((format!("g{g}.heap_pops"), p.heap_pops as f64));
    values.push((format!("g{g}.apps_completed"), kernels.apps_completed as f64));
    values.push((format!("g{g}.tests_completed"), kernels.tests_completed as f64));
    values.push((format!("g{g}.seed"), KERNELS_SEED as f64));
    values
}

/// Renders the baseline file for `values` (flat JSON, shortest float
/// round-trip formatting so re-reading is exact).
pub fn render_baseline(values: &[(String, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (name, value)) in values.iter().enumerate() {
        let sep = if i + 1 == values.len() { "" } else { "," };
        let _ = writeln!(out, "  \"{name}\": {value}{sep}");
    }
    out.push_str("}\n");
    out
}

/// Loads the committed baseline. `None` when missing or unparseable.
pub fn load_baseline() -> Option<Vec<(String, f64)>> {
    let text = fs::read_to_string(baseline_path()).ok()?;
    let map = parse_flat_json(&text)?;
    Some(
        map.into_iter()
            .filter_map(|(k, v)| v.num().map(|n| (k, n)))
            .collect(),
    )
}

/// Whether `current` drifted from `baseline` beyond [`REL_TOL`].
pub fn drifted(baseline: f64, current: f64) -> bool {
    let diff = (current - baseline).abs();
    diff > REL_TOL * baseline.abs().max(1.0)
}

/// Runs the regression watch. Prints the drift table to stdout and
/// returns `true` when every aggregate is within tolerance (the CLI
/// exits nonzero otherwise).
///
/// `inject_drift` multiplies the first aggregate by 1.5 before the
/// comparison — a test-only hook CI uses to prove the gate can fail.
/// With `MANYTEST_UPDATE_GOLDEN=1` the baseline is rewritten from the
/// current values instead and the watch always passes.
pub fn run_regress(jobs: usize, inject_drift: bool) -> bool {
    let mut current = current_values(jobs);
    if std::env::var("MANYTEST_UPDATE_GOLDEN").map_or(false, |v| v == "1") {
        let path = baseline_path();
        if let Some(parent) = path.parent() {
            let _ = fs::create_dir_all(parent);
        }
        fs::write(&path, render_baseline(&current)).expect("write regress baseline");
        println!("## regress — baseline regenerated ({} aggregates)", current.len());
        println!("# wrote {}", path.display());
        return true;
    }
    if inject_drift {
        current[0].1 *= 1.5;
        println!("# drift injection: {} multiplied by 1.5", current[0].0);
    }
    let Some(baseline) = load_baseline() else {
        println!(
            "## regress — no baseline at {} (run with MANYTEST_UPDATE_GOLDEN=1 to create it)",
            baseline_path().display()
        );
        return false;
    };
    println!("## regress — {} aggregates vs committed baseline (quick scale)", current.len());
    println!("{:<26} {:>18} {:>18}  verdict", "metric", "baseline", "current");
    let mut drifts = 0usize;
    let mut missing = 0usize;
    for (name, value) in &current {
        match baseline.iter().find(|(k, _)| k == name) {
            Some((_, base)) => {
                let bad = drifted(*base, *value);
                if bad {
                    drifts += 1;
                }
                println!(
                    "{name:<26} {base:>18} {value:>18}  {}",
                    if bad { "DRIFT" } else { "ok" }
                );
            }
            None => {
                missing += 1;
                println!("{name:<26} {:>18} {value:>18}  NEW (not in baseline)", "-");
            }
        }
    }
    for (name, base) in &baseline {
        if !current.iter().any(|(k, _)| k == name) {
            missing += 1;
            println!("{name:<26} {base:>18} {:>18}  GONE (baseline only)", "-");
        }
    }
    print_ledger_context();
    let ok = drifts == 0 && missing == 0;
    if ok {
        println!("regress: OK — all aggregates within tolerance");
    } else {
        println!("regress: FAIL — {drifts} drifted, {missing} missing/new aggregate(s)");
    }
    ok
}

/// Informational: how the current sweep compares with the most recent
/// ledger manifest per watched probe (skipped when no ledger is active).
fn print_ledger_context() {
    let Some(dir) = ledger::dir() else {
        return;
    };
    let (manifests, _) = ledger::load_manifests(&dir);
    for &id in &REGRESS_PROBES {
        if let Some(m) = manifests
            .iter()
            .rev()
            .find(|m| m.probe.as_deref() == Some(id) && m.outcome != "failed")
        {
            println!(
                "# ledger history: {id} last seen as run {} (outcome {}, {} MIPS, {} tests)",
                m.seq, m.outcome, m.throughput_mips, m.tests_completed
            );
        }
    }
}

/// Re-exported for tests: parses a baseline text blob.
pub fn parse_baseline(text: &str) -> Option<Vec<(String, f64)>> {
    let map = parse_flat_json(text)?;
    let mut out = Vec::new();
    for (k, v) in map {
        match v {
            FlatValue::Num(n) => out.push((k, n)),
            FlatValue::Str(_) => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_rendering_round_trips() {
        let values = vec![
            ("e3.throughput_mips".to_owned(), 1234.567891011),
            ("g8.epochs".to_owned(), 250.0),
        ];
        let text = render_baseline(&values);
        let mut back = parse_baseline(&text).expect("baseline parses");
        back.sort_by(|a, b| a.0.cmp(&b.0));
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(back, sorted);
    }

    #[test]
    fn drift_detection_tolerates_only_roundtrip_noise() {
        assert!(!drifted(100.0, 100.0));
        assert!(!drifted(100.0, 100.0 + 1e-8));
        assert!(drifted(100.0, 100.1));
        assert!(drifted(0.0, 0.5));
        assert!(!drifted(0.0, 0.0));
        // Injected drift (×1.5) is always caught.
        assert!(drifted(42.0, 63.0));
    }
}
