//! CLI driver for `manytest-lint`.
//!
//! ```sh
//! manytest-lint --workspace [--json] [--root DIR]   # lint the repo
//! manytest-lint [--json] FILE...                     # lint single files
//! manytest-lint --rules                              # list rules
//! ```
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = usage or I/O error.

use manytest_lint::diag::{render_human, render_json};
use manytest_lint::rules::{registry, META_RULES};
use manytest_lint::source::SourceFile;
use manytest_lint::{lint_files, lint_workspace, LintReport};
use std::path::{Path, PathBuf};

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let workspace = args.iter().any(|a| a == "--workspace");
    let list_rules = args.iter().any(|a| a == "--rules");
    let mut root_flag: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" | "--workspace" | "--rules" => {}
            "--root" => match it.next() {
                Some(v) => root_flag = Some(PathBuf::from(v)),
                None => return usage("--root needs a directory"),
            },
            "--help" | "-h" => {
                print!("{HELP}");
                return 0;
            }
            a if a.starts_with("--root=") => {
                root_flag = Some(PathBuf::from(&a["--root=".len()..]));
            }
            a if a.starts_with("--") => return usage(&format!("unknown flag {a}")),
            a => paths.push(PathBuf::from(a)),
        }
    }

    if list_rules {
        for rule in registry() {
            println!("{:<26} {}", rule.id(), rule.description());
        }
        for meta in META_RULES {
            println!("{meta:<26} (allow audit; reported by the engine itself)");
        }
        return 0;
    }

    let report: LintReport = if workspace {
        let root = match root_flag.or_else(discover_root) {
            Some(r) => r,
            None => return usage("could not find a workspace root; pass --root DIR"),
        };
        match lint_workspace(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("manytest-lint: error reading workspace: {e}");
                return 2;
            }
        }
    } else if paths.is_empty() {
        return usage("pass --workspace or one or more .rs files");
    } else {
        let mut files = Vec::new();
        for p in &paths {
            match std::fs::read_to_string(p) {
                Ok(text) => {
                    files.push(SourceFile::from_source(p.to_string_lossy(), text));
                }
                Err(e) => {
                    eprintln!("manytest-lint: cannot read {}: {e}", p.display());
                    return 2;
                }
            }
        }
        lint_files(files)
    };

    if json {
        print!("{}", render_json(&report.findings, report.files_scanned));
    } else {
        print!("{}", render_human(&report.findings, report.files_scanned));
    }
    if report.is_clean() {
        0
    } else {
        1
    }
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`; falls back to the compile-time location of
/// this crate (two levels below the root).
fn discover_root() -> Option<PathBuf> {
    if let Ok(mut dir) = std::env::current_dir() {
        loop {
            if is_workspace_root(&dir) {
                return Some(dir);
            }
            if !dir.pop() {
                break;
            }
        }
    }
    let baked = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let baked = baked.canonicalize().ok()?;
    is_workspace_root(&baked).then_some(baked)
}

fn is_workspace_root(dir: &Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml"))
        .map(|t| t.contains("[workspace]"))
        .unwrap_or(false)
}

fn usage(msg: &str) -> i32 {
    eprintln!("manytest-lint: {msg}");
    eprint!("{HELP}");
    2
}

const HELP: &str = "\
usage: manytest-lint --workspace [--json] [--root DIR]
       manytest-lint [--json] FILE...
       manytest-lint --rules

  --workspace  lint every .rs file in the workspace plus the golden
               JSONs and doc probe references
  --json       machine-readable output (CI artifact)
  --root DIR   workspace root (default: walk up from the current dir)
  --rules      list registered rules and exit

exit codes: 0 clean, 1 findings, 2 usage/io error
";
