//! Wear distribution under the two mappers: the test-aware
//! utilization-oriented mapper also *levels* wear, because its utilisation
//! term steers new applications away from recently-hot cores.
//!
//! Prints the per-core damage distribution (mean, spread, hottest/coolest
//! ratio) after a long run under each mapper.
//!
//! ```sh
//! cargo run --example wear_leveling --release
//! ```

use manytest::prelude::*;

fn damage_stats(report: &Report) -> (f64, f64, f64) {
    let n = report.damage_per_core.len() as f64;
    let mean = report.damage_per_core.iter().sum::<f64>() / n;
    let var = report
        .damage_per_core
        .iter()
        .map(|d| (d - mean).powi(2))
        .sum::<f64>()
        / n;
    let max = report.damage_per_core.iter().cloned().fold(0.0, f64::max);
    let min = report
        .damage_per_core
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    (mean, var.sqrt() / mean, max / min.max(1e-12))
}

fn main() -> Result<(), BuildError> {
    println!("mapper            mean damage   rel. spread   hottest/coolest");
    println!("----------------  ------------  ------------  ---------------");
    for (name, kind) in [
        ("baseline (CoNA)", MapperKind::Baseline),
        ("test-aware (TUM)", MapperKind::TestAware),
    ] {
        let report = SystemBuilder::new(TechNode::N16)
            .seed(13)
            .arrival_rate(1_500.0)
            .sim_time_ms(800)
            .mapper(kind)
            .build()?
            .run();
        let (mean, rel_spread, ratio) = damage_stats(&report);
        println!(
            "{:<16}  {:>12.4}  {:>11.1}%  {:>15.2}",
            name,
            mean,
            rel_spread * 100.0,
            ratio
        );
    }
    println!();
    println!(
        "Lower spread and hottest/coolest ratio = more even aging across the die,\n\
         which directly extends the chip's time to first wear-out failure."
    );
    Ok(())
}
