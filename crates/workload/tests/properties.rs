//! Property tests of the workload substrate.

use manytest_sim::SimRng;
use manytest_workload::prelude::*;
use proptest::prelude::*;

proptest! {
    #[test]
    fn generator_respects_arbitrary_bounds(
        seed in any::<u64>(),
        min_tasks in 1usize..6,
        extra_tasks in 0usize..10,
        min_instr in 1_000u64..100_000,
        instr_span in 0u64..1_000_000,
    ) {
        let config = TaskGraphGenerator {
            min_tasks,
            max_tasks: min_tasks + extra_tasks,
            min_instructions: min_instr,
            max_instructions: min_instr + instr_span,
            ..TaskGraphGenerator::default()
        };
        let mut rng = SimRng::seed_from(seed);
        let g = config.generate(&mut rng, "prop");
        prop_assert!(g.validate().is_ok());
        prop_assert!((min_tasks..=min_tasks + extra_tasks).contains(&g.task_count()));
        for t in g.tasks() {
            prop_assert!((min_instr..=min_instr + instr_span).contains(&t.instructions));
        }
    }

    #[test]
    fn topological_order_is_a_valid_schedule(seed in any::<u64>()) {
        let mut rng = SimRng::seed_from(seed);
        let g = TaskGraphGenerator::default().generate(&mut rng, "prop");
        let order = g.topological_order().unwrap();
        let position = |t: TaskId| order.iter().position(|&x| x == t).unwrap();
        for e in g.edges() {
            prop_assert!(position(e.from) < position(e.to));
        }
    }

    #[test]
    fn critical_path_bounds(seed in any::<u64>()) {
        let mut rng = SimRng::seed_from(seed);
        let g = TaskGraphGenerator::default().generate(&mut rng, "prop");
        let cp = g.critical_path_len();
        prop_assert!(cp >= 1);
        prop_assert!(cp <= g.task_count());
    }

    #[test]
    fn arrival_gaps_have_the_right_mean(seed in any::<u64>(), rate in 10.0f64..10_000.0) {
        let mut proc = ArrivalProcess::poisson(rate);
        let mut rng = SimRng::seed_from(seed);
        let n = 3_000;
        let total: f64 = (0..n)
            .map(|_| proc.next_interarrival(&mut rng).as_secs_f64())
            .sum();
        let mean = total / n as f64;
        let expected = 1.0 / rate;
        // 3k samples of an exponential: mean within 10% w.h.p.
        prop_assert!((mean - expected).abs() < expected * 0.1, "mean {mean} vs {expected}");
    }

    #[test]
    fn mix_sampling_yields_valid_apps(seed in any::<u64>()) {
        let mut mix = WorkloadMix::standard();
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..10 {
            let g = mix.sample(&mut rng);
            prop_assert!(g.validate().is_ok());
            prop_assert!(g.task_count() >= 1);
            prop_assert!(g.task_count() <= 12);
        }
    }

    #[test]
    fn total_volumes_are_consistent(seed in any::<u64>()) {
        let mut rng = SimRng::seed_from(seed);
        let g = TaskGraphGenerator::default().generate(&mut rng, "prop");
        let manual_instr: u64 = g.tasks().iter().map(|t| t.instructions).sum();
        prop_assert_eq!(g.total_instructions(), manual_instr);
        let manual_bits: f64 = g.edges().iter().map(|e| e.bits).sum();
        prop_assert!((g.total_bits() - manual_bits).abs() < 1e-9);
    }

    #[test]
    fn roots_have_no_predecessors_and_exist(seed in any::<u64>()) {
        let mut rng = SimRng::seed_from(seed);
        let g = TaskGraphGenerator::default().generate(&mut rng, "prop");
        let roots = g.roots();
        prop_assert!(!roots.is_empty());
        for r in roots {
            prop_assert_eq!(g.predecessors(r).count(), 0);
        }
    }
}
