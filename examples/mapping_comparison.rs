//! Mapping strategy comparison: the baseline contiguous mapper (CoNA-style,
//! test-agnostic) versus the paper's test-aware utilization-oriented
//! mapping (TUM), on the same workload and seed.
//!
//! TUM leaves test-critical cores idle so the scheduler can reach them;
//! the baseline blindly occupies them, stretching test intervals.
//!
//! ```sh
//! cargo run --example mapping_comparison --release
//! ```

use manytest::prelude::*;

fn run(mapper: MapperKind, seed: u64) -> Result<Report, BuildError> {
    Ok(SystemBuilder::new(TechNode::N16)
        .seed(seed)
        .arrival_rate(600.0) // load high enough that mapping choices matter
        .sim_time_ms(250)
        .mapper(mapper)
        .build()?
        .run())
}

fn main() -> Result<(), BuildError> {
    println!("metric                          baseline (CoNA)   test-aware (TUM)");
    println!("------------------------------  ----------------  ----------------");
    let seeds = [3, 17, 90];
    let mut base_acc = Vec::new();
    let mut tum_acc = Vec::new();
    for &seed in &seeds {
        base_acc.push(run(MapperKind::Baseline, seed)?);
        tum_acc.push(run(MapperKind::TestAware, seed)?);
    }
    let mean = |f: &dyn Fn(&Report) -> f64, rs: &[Report]| -> f64 {
        rs.iter().map(|r| f(r)).sum::<f64>() / rs.len() as f64
    };
    let rows: Vec<(&str, Box<dyn Fn(&Report) -> f64>, f64)> = vec![
        ("throughput (MIPS)", Box::new(|r: &Report| r.throughput_mips), 1.0),
        ("tests completed", Box::new(|r: &Report| r.tests_completed as f64), 1.0),
        ("tests aborted", Box::new(|r: &Report| r.tests_aborted as f64), 1.0),
        ("mean test interval (ms)", Box::new(|r: &Report| r.mean_test_interval), 1e3),
        ("max test interval (ms)", Box::new(|r: &Report| r.max_test_interval), 1e3),
        ("min tests on any core", Box::new(|r: &Report| r.min_tests_per_core as f64), 1.0),
        ("mean hop cost (kbit-hops)", Box::new(|r: &Report| r.mean_hop_cost), 1e-3),
    ];
    for (name, f, scale) in &rows {
        println!(
            "{:<30}  {:>16.2}  {:>16.2}",
            name,
            mean(&|r| f(r), &base_acc) * scale,
            mean(&|r| f(r), &tum_acc) * scale,
        );
    }
    println!();
    println!(
        "Averaged over {} seeds. TUM should deliver equal-or-better throughput while\n\
         completing more tests per core (higher minimum) with fewer aborts.",
        seeds.len()
    );
    Ok(())
}
