//! The result of a mapping decision.

use manytest_noc::{Coord, Mesh2D};
use manytest_workload::{TaskGraph, TaskId};
use serde::{Deserialize, Serialize};

/// An assignment of every task of an application to a distinct core.
///
/// # Examples
///
/// ```
/// use manytest_map::mapping::Mapping;
/// use manytest_noc::Coord;
/// use manytest_workload::{Task, TaskGraph};
///
/// let mut g = TaskGraph::new("pair");
/// let a = g.add_task(Task { instructions: 100 });
/// let b = g.add_task(Task { instructions: 100 });
/// g.add_edge(a, b, 1_000.0);
/// let m = Mapping::new(vec![Coord::new(0, 0), Coord::new(1, 0)]);
/// assert_eq!(m.coord_of(a), Coord::new(0, 0));
/// assert_eq!(m.weighted_hop_cost(&g), 1_000.0); // 1000 bits × 1 hop
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    slots: Vec<Coord>,
}

impl Mapping {
    /// Creates a mapping from a task-indexed coordinate list
    /// (`slots[i]` hosts `TaskId(i)`).
    ///
    /// # Panics
    ///
    /// Panics if two tasks share a core.
    pub fn new(slots: Vec<Coord>) -> Self {
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        let before = sorted.len();
        sorted.dedup();
        assert_eq!(before, sorted.len(), "mapping assigns one core twice");
        Mapping { slots }
    }

    /// Number of mapped tasks (= cores occupied).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no task is mapped.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The core hosting `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn coord_of(&self, task: TaskId) -> Coord {
        self.slots[task.index()]
    }

    /// All occupied cores in task order.
    pub fn coords(&self) -> &[Coord] {
        &self.slots
    }

    /// Sum over application edges of `bits × hop distance` — the standard
    /// communication-cost objective contiguous mappers minimise.
    pub fn weighted_hop_cost(&self, app: &TaskGraph) -> f64 {
        app.edges()
            .iter()
            .map(|e| e.bits * self.coord_of(e.from).manhattan(self.coord_of(e.to)) as f64)
            .sum()
    }

    /// Mean hop distance over edges (unweighted); 0 for edge-less apps.
    pub fn mean_hop_distance(&self, app: &TaskGraph) -> f64 {
        if app.edges().is_empty() {
            return 0.0;
        }
        let total: u32 = app
            .edges()
            .iter()
            .map(|e| self.coord_of(e.from).manhattan(self.coord_of(e.to)))
            .sum();
        total as f64 / app.edges().len() as f64
    }

    /// The `(min, max)` corner coordinates of the mapping's bounding box,
    /// or `None` for an empty mapping.
    pub fn bounding_box(&self) -> Option<(Coord, Coord)> {
        let first = *self.slots.first()?;
        let mut min = first;
        let mut max = first;
        for &c in &self.slots[1..] {
            min.x = min.x.min(c.x);
            min.y = min.y.min(c.y);
            max.x = max.x.max(c.x);
            max.y = max.y.max(c.y);
        }
        Some((min, max))
    }

    /// The bounding-box area of the mapping (dispersion proxy).
    pub fn bounding_box_area(&self) -> usize {
        match self.bounding_box() {
            Some((min, max)) => (max.x - min.x + 1) as usize * (max.y - min.y + 1) as usize,
            None => 0,
        }
    }

    /// Checks the mapping against a mesh and application: right arity,
    /// all coordinates inside the mesh, no sharing (checked at build time).
    pub fn is_valid_for(&self, mesh: Mesh2D, app: &TaskGraph) -> bool {
        self.slots.len() == app.task_count() && self.slots.iter().all(|&c| mesh.contains(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manytest_workload::Task;

    fn chain(n: usize, bits: f64) -> TaskGraph {
        let mut g = TaskGraph::new("chain");
        let ids: Vec<TaskId> = (0..n)
            .map(|_| g.add_task(Task { instructions: 1 }))
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], bits);
        }
        g
    }

    #[test]
    fn hop_cost_of_adjacent_chain() {
        let g = chain(3, 10.0);
        let m = Mapping::new(vec![Coord::new(0, 0), Coord::new(1, 0), Coord::new(2, 0)]);
        assert_eq!(m.weighted_hop_cost(&g), 20.0);
        assert_eq!(m.mean_hop_distance(&g), 1.0);
    }

    #[test]
    fn hop_cost_penalizes_dispersion() {
        let g = chain(2, 10.0);
        let tight = Mapping::new(vec![Coord::new(0, 0), Coord::new(1, 0)]);
        let loose = Mapping::new(vec![Coord::new(0, 0), Coord::new(4, 4)]);
        assert!(loose.weighted_hop_cost(&g) > tight.weighted_hop_cost(&g));
    }

    #[test]
    #[should_panic(expected = "one core twice")]
    fn duplicate_core_panics() {
        Mapping::new(vec![Coord::new(1, 1), Coord::new(1, 1)]);
    }

    #[test]
    fn bounding_box() {
        let m = Mapping::new(vec![Coord::new(1, 1), Coord::new(3, 2)]);
        assert_eq!(m.bounding_box_area(), 6);
        assert_eq!(m.bounding_box(), Some((Coord::new(1, 1), Coord::new(3, 2))));
        let empty = Mapping::new(vec![]);
        assert_eq!(empty.bounding_box_area(), 0);
        assert_eq!(empty.bounding_box(), None);
    }

    #[test]
    fn validity_checks() {
        let mesh = Mesh2D::new(4, 4);
        let g = chain(2, 1.0);
        let good = Mapping::new(vec![Coord::new(0, 0), Coord::new(1, 0)]);
        assert!(good.is_valid_for(mesh, &g));
        let wrong_arity = Mapping::new(vec![Coord::new(0, 0)]);
        assert!(!wrong_arity.is_valid_for(mesh, &g));
        let outside = Mapping::new(vec![Coord::new(0, 0), Coord::new(9, 9)]);
        assert!(!outside.is_valid_for(mesh, &g));
    }

    #[test]
    fn edgeless_app_has_zero_mean_distance() {
        let mut g = TaskGraph::new("solo");
        g.add_task(Task { instructions: 1 });
        let m = Mapping::new(vec![Coord::new(2, 2)]);
        assert_eq!(m.mean_hop_distance(&g), 0.0);
        assert_eq!(m.weighted_hop_cost(&g), 0.0);
    }
}
