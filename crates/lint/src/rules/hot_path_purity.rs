//! `hot-path-purity`: no allocation, locking, I/O or panic site may be
//! *transitively reachable* from the six control-loop phase entry
//! points without an audit.
//!
//! The paper's per-epoch control loop (PID power capping → fault-aware
//! mapping → test scheduling → event drain → thermal close) only stays
//! power-aware at scale if each phase is allocation-, lock- and
//! I/O-free after warmup. The old `panic-in-hot-path` rule guarded a
//! file allowlist lexically; this rule supersedes it with call-graph
//! reachability: starting from the phase entry points it walks the
//! resolved call graph ([`crate::callgraph`]) and reports every
//! effectful sink site ([`crate::effects`]) it can reach, annotated
//! with the call chain that reaches it.
//!
//! Audits come in two layers:
//! * a site-level `// lint:allow(hot-path-purity, reason = "…")` on the
//!   offending line, for a single reviewed sink;
//! * a fn-level `// lint:effect(<spec>, reason = "…")` annotation,
//!   which fixes the function's effect set and cuts traversal — the
//!   escape hatch for dynamic dispatch, documented warmup constructors
//!   (`warmup`) and lanes that deliberately own an allocation
//!   (`alloc`), cf. the effect-annotation contract in CONTRIBUTING.md.
//!
//! Workspaces without `crates/core/src/system.rs` entry points (unit
//! fixtures) are exempt — the rule is anchored to the real control
//! loop; synthetic workspaces opt in by defining `impl System` methods
//! with the entry-point names in a file named `system.rs`.

use super::Rule;
use crate::callgraph::CallGraph;
use crate::diag::Finding;
use crate::effects::{self, EffectSet};
use crate::source::Workspace;
use crate::symbols::SymbolTable;

pub struct HotPathPurity;

/// The six phase entry points: `System::<fn>` in a `system.rs`.
pub const ENTRY_POINTS: [(&str, &str); 6] = [
    ("System", "control"),        // pid capping + fault activation
    ("System", "map_context"),    // mapping inputs snapshot
    ("System", "admit_pending"),  // fault-aware admission (map)
    ("System", "schedule_tests"), // power-aware test scheduling
    ("System", "handle"),         // event drain
    ("System", "close_epoch"),    // thermal + aging close
];

const RATIONALE: &str =
    "the per-epoch control loop must stay alloc/lock/IO-free after warmup or the \
     power-awareness claim degrades at mesh scale; refactor the sink out of the hot path, \
     or audit it with lint:allow(hot-path-purity, reason = \"…\") at the site or a \
     lint:effect(<spec>, reason = \"…\") on the owning fn";

impl Rule for HotPathPurity {
    fn id(&self) -> &'static str {
        "hot-path-purity"
    }

    fn description(&self) -> &'static str {
        "no unaudited alloc/lock/IO/panic site may be transitively reachable from the six \
         control-loop phase entry points"
    }

    fn check_workspace(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let table = SymbolTable::build(ws);
        let entries: Vec<usize> = table
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                !f.is_test
                    && ws.files[f.file]
                        .rel_path
                        .rsplit('/')
                        .next()
                        .is_some_and(|base| base == "system.rs")
                    && ENTRY_POINTS
                        .iter()
                        .any(|(owner, name)| f.owner.as_deref() == Some(*owner) && f.name == *name)
            })
            .map(|(i, _)| i)
            .collect();
        if entries.is_empty() {
            return;
        }
        let cg = CallGraph::build(ws, &table);
        let eff = effects::analyze(ws, &table, &cg);

        // BFS over the call graph; parents reconstruct the call chain
        // shown in each finding. Annotated fns are audited cut points.
        let mut parent: Vec<Option<usize>> = vec![None; table.fns.len()];
        let mut seen = vec![false; table.fns.len()];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &e in &entries {
            if !seen[e] {
                seen[e] = true;
                queue.push_back(e);
            }
        }
        while let Some(fi) = queue.pop_front() {
            if eff.declared[fi].is_some() {
                continue; // audited: neither report nor descend
            }
            for &si in &cg.sites_of[fi] {
                let site = &cg.sites[si];
                for &callee in &site.targets {
                    // The offline harness (bench) and the linter itself
                    // are never called from the control loop — edges
                    // into them are name-collision artifacts of the
                    // union method resolution.
                    let callee_crate = ws.files[table.fns[callee].file].crate_name();
                    if matches!(callee_crate, "bench" | "lint" | "manytest") {
                        continue;
                    }
                    if !seen[callee] && !table.fns[callee].is_test {
                        seen[callee] = true;
                        parent[callee] = Some(fi);
                        queue.push_back(callee);
                    }
                }
            }
            for &(si, e) in &eff.sinks_of[fi] {
                let site = &cg.sites[si];
                let f = &table.fns[fi];
                out.push(Finding {
                    rule: self.id(),
                    file: ws.files[f.file].rel_path.clone(),
                    line: site.line,
                    col: site.col,
                    message: format!(
                        "hot path `{}`: `{}` {} ({})",
                        chain(&table, &parent, fi),
                        site.name,
                        verb(e),
                        e.label()
                    ),
                    rationale: RATIONALE,
                });
            }
        }
    }
}

/// `control → probe_lane → launch_probe`, reconstructed from BFS
/// parents.
fn chain(table: &SymbolTable, parent: &[Option<usize>], mut fi: usize) -> String {
    let mut names = vec![table.fns[fi].name.clone()];
    while let Some(p) = parent[fi] {
        names.push(table.fns[p].name.clone());
        fi = p;
    }
    names.reverse();
    names.join(" → ")
}

/// The dominant verb for a site's effect set, for readable messages.
fn verb(e: EffectSet) -> &'static str {
    if e.contains(EffectSet::ALLOC) {
        "allocates"
    } else if e.contains(EffectSet::LOCK) {
        "takes a lock"
    } else if e.contains(EffectSet::IO) {
        "does I/O"
    } else {
        "may panic"
    }
}
