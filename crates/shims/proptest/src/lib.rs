//! Offline mini-proptest.
//!
//! A deterministic, dependency-free stand-in for the subset of the
//! [`proptest`](https://crates.io/crates/proptest) API this workspace's
//! property tests use:
//!
//! - the `proptest! { #[test] fn name(x in strategy, ..) { .. } }` macro,
//! - `prop_assert!` / `prop_assert_eq!`,
//! - range strategies (`0u64..1_000`, `-1e3f64..1e3`), tuples of
//!   strategies, `any::<T>()`,
//! - `prop::collection::vec(strategy, len)` and `prop::sample::select`.
//!
//! Differences from the real crate: cases are generated from a fixed
//! per-test seed (hash of the test name), so runs are fully deterministic;
//! there is no shrinking — the failure message reports the case number and
//! the assertion that failed instead.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic case generation.

    /// Number of cases each `proptest!` test runs.
    pub const CASES: u32 = 96;

    /// SplitMix64-based generator; the whole shim draws from this.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a hash), so every
        /// test gets a distinct but reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform draw in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe producing values of type `Value` from the deterministic
    /// test RNG. Mirrors `proptest::strategy::Strategy`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start as u64).wrapping_add(rng.below(span)) as $t
                }
            }
        )+};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);

    /// String strategy from a regex-like pattern. Supports the single
    /// form the workspace uses — `[class]{min,max}` with literal
    /// characters and `a-z` ranges in the class — and falls back to
    /// yielding the pattern itself verbatim for anything else.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let pat = *self;
            let parsed = (|| {
                let class_end = pat.find(']')?;
                let class: Vec<char> = {
                    let inner: Vec<char> =
                        pat.get(1..class_end)?.chars().collect();
                    let mut chars = Vec::new();
                    let mut i = 0;
                    while i < inner.len() {
                        if i + 2 < inner.len() && inner[i + 1] == '-' {
                            let (lo, hi) = (inner[i] as u32, inner[i + 2] as u32);
                            for c in lo..=hi {
                                chars.push(char::from_u32(c)?);
                            }
                            i += 3;
                        } else {
                            chars.push(inner[i]);
                            i += 1;
                        }
                    }
                    chars
                };
                if !pat.starts_with('[') || class.is_empty() {
                    return None;
                }
                let reps = pat.get(class_end + 1..)?;
                let reps = reps.strip_prefix('{')?.strip_suffix('}')?;
                let (min, max) = match reps.split_once(',') {
                    Some((lo, hi)) => (lo.parse().ok()?, hi.parse().ok()?),
                    None => {
                        let n: usize = reps.parse().ok()?;
                        (n, n)
                    }
                };
                Some((class, min, max))
            })();
            match parsed {
                Some((class, min, max)) => {
                    let len = min + rng.below((max - min + 1) as u64) as usize;
                    (0..len)
                        .map(|_| class[rng.below(class.len() as u64) as usize])
                        .collect()
                }
                None => pat.to_string(),
            }
        }
    }

    /// Types with a canonical "any value" strategy (see [`crate::arbitrary::any`]).
    pub trait ArbitraryValue {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl ArbitraryValue for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }
    impl ArbitraryValue for u16 {
        fn arbitrary(rng: &mut TestRng) -> u16 {
            rng.next_u64() as u16
        }
    }
    impl ArbitraryValue for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }
    impl ArbitraryValue for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }
    impl ArbitraryValue for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }
    impl ArbitraryValue for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    /// Strategy returned by [`crate::arbitrary::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! The [`any`] entry point.

    use crate::strategy::{Any, ArbitraryValue};

    /// A strategy producing unconstrained values of `T`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any::default()
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: an exact length or a half-open
    /// range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    /// Strategy generating `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size` (a `usize` or a
    /// `Range<usize>`), mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniform choice among `options`, mirroring `proptest::sample::select`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

/// Runs each test body against [`test_runner::CASES`] generated cases.
///
/// Bodies may use `prop_assert!`/`prop_assert_eq!`; a failing assertion
/// reports the case number and re-runs nothing (no shrinking).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..$crate::test_runner::CASES {
                    let outcome: ::core::result::Result<(), ::std::string::String> = (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(message) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            $crate::test_runner::CASES,
                            message
                        );
                    }
                }
            }
        )+
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `assert_eq!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}` ({} == {})",
                l,
                r,
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    pub mod prop {
        //! The `prop::` module path (`prop::collection`, `prop::sample`).
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn tuples_and_map_compose(
            (a, b) in (0u16..5, 0u16..5).prop_map(|(x, y)| (x + 10, y + 20)),
            pick in prop::sample::select(vec![1usize, 2, 3]),
        ) {
            prop_assert!((10..15).contains(&a));
            prop_assert!((20..25).contains(&b));
            prop_assert!(pick >= 1 && pick <= 3);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        let s = crate::collection::vec(0u64..1000, 0..20);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
